//! Parallel design-space exploration (DSE) for the Chain-NN models.
//!
//! The paper's headline numbers come from a single hand-picked point —
//! 576 PEs at 700 MHz with 32 + 25 KB SRAM and 16-bit operands. This
//! crate turns that single evaluation into a subsystem: define a grid
//! over the architectural knobs ([`SweepSpec`]), evaluate every point
//! through the existing performance / traffic / power / area stack on a
//! multithreaded work-queue executor, memoize results in a
//! content-hashed cache so overlapping sweeps are incremental, and
//! extract fps × power × area Pareto frontiers for export as CSV/JSON.
//!
//! * [`spec`] — [`SweepSpec`] grids, [`DesignPoint`]s, CLI range parsing.
//! * [`eval`] — one point through the full model stack.
//! * [`accuracy`] — the measured float-vs-fixed SQNR model behind the
//!   quantization axis: every evaluated point carries the `sqnr_db` of
//!   its `(network, word width)` pair, so narrow words pay a measured
//!   accuracy cost instead of dominating for free.
//! * [`engine`] — the work-assisting execution engine: per-job atomic
//!   claim cursors, adaptive claim sizing, bounded admission. The
//!   sweep executor, the serving daemon's scheduler and the tuner's
//!   rounds all run on it.
//! * [`executor`] — the one-shot sweep entry point over [`engine`];
//!   results are index-sorted, so output is byte-identical at any
//!   thread count.
//! * [`cache`] — content-hashed memoization ([`PointCache`]).
//! * [`pareto`] — 2D / 3D non-dominated frontier extraction.
//! * [`export`] — CSV / JSON writers following `chain-nn-bench`'s
//!   conventions.
//!
//! # Example
//!
//! ```
//! use chain_nn_dse::{Explorer, SweepSpec};
//!
//! let spec = SweepSpec {
//!     pes: vec![288, 576, 1152],
//!     freqs_mhz: vec![350.0, 700.0],
//!     ..SweepSpec::paper_point()
//! };
//! let mut explorer = Explorer::new();
//! let result = explorer.run(&spec, 2).unwrap();
//! assert_eq!(result.points.len(), 6);
//! // The paper's 576-PE / 700 MHz point is Pareto-optimal.
//! assert!(result.contains_paper_point_on_frontier());
//! // Re-running the same spec costs nothing new.
//! let again = explorer.run(&spec, 4).unwrap();
//! assert_eq!(again.stats.cache_hits, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod cache;
pub mod engine;
pub mod eval;
pub mod executor;
pub mod export;
pub mod mix;
pub mod pareto;
pub mod persist;
pub mod spec;

use std::error::Error;
use std::fmt;
use std::time::Instant;

use chain_nn_nets::{zoo, Network};

pub use accuracy::AccuracyStats;
pub use cache::{CacheStats, PointCache};
pub use eval::{evaluate, PointOutcome, PointResult};
pub use mix::{evaluate_mix, MixEntry, MixOutcome, MixResult, WorkloadMix};
pub use persist::{CacheFile, CompactReport, LoadReport};
pub use spec::{DesignPoint, RangeSpec, SweepPart, SweepSpec};

/// Errors produced by the DSE engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DseError {
    /// The sweep specification itself is invalid.
    Spec(String),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Spec(msg) => write!(f, "invalid sweep spec: {msg}"),
        }
    }
}

impl Error for DseError {}

/// Looks a zoo network up by its CLI name (case-insensitive, with the
/// common aliases).
pub fn network_by_name(name: &str) -> Option<Network> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(zoo::alexnet()),
        "vgg16" | "vgg-16" => Some(zoo::vgg16()),
        "lenet" | "lenet-5" | "mnist" => Some(zoo::lenet()),
        "cifar10" | "cifar-10" => Some(zoo::cifar10()),
        "resnet18" | "resnet-18" => Some(zoo::resnet18()),
        "mobilenet" | "mobilenetv1" | "mobilenet-v1" => Some(zoo::mobilenet_v1()),
        _ => None,
    }
}

/// Wall-clock and cache statistics of one sweep run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepStats {
    /// Points in the grid.
    pub points: usize,
    /// Points that mapped and produced model results.
    pub feasible: usize,
    /// Cache hits during this run.
    pub cache_hits: u64,
    /// Cache misses (fresh evaluations) during this run.
    pub cache_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the run in milliseconds.
    pub wall_ms: f64,
}

impl SweepStats {
    /// Grid points processed per second of wall time.
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.points as f64 / (self.wall_ms / 1e3)
    }
}

/// Everything one sweep produced: the grid, per-point outcomes in grid
/// order, both Pareto frontiers (as indices into `points`) and run
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The flattened grid, in [`SweepSpec::points`] order.
    pub points: Vec<DesignPoint>,
    /// Outcome per point, aligned with `points`.
    pub outcomes: Vec<PointOutcome>,
    /// Indices of fps × power non-dominated points (ascending).
    pub frontier_2d: Vec<usize>,
    /// Indices of fps × power × area non-dominated points (ascending).
    pub frontier_3d: Vec<usize>,
    /// Indices of fps × power × SQNR non-dominated points (ascending) —
    /// the accuracy variant of the 3D frontier, where measured
    /// precision replaces logic area as the third axis.
    pub frontier_sqnr: Vec<usize>,
    /// Run statistics.
    pub stats: SweepStats,
}

impl SweepResult {
    /// The `(point, result)` pairs of the 3D frontier.
    pub fn frontier_points(&self) -> Vec<(&DesignPoint, &PointResult)> {
        self.frontier_3d
            .iter()
            .filter_map(|&i| Some((&self.points[i], self.outcomes[i].result()?)))
            .collect()
    }

    /// Whether the paper's 576-PE AlexNet point is in this sweep *and*
    /// on the 3D Pareto frontier (the acceptance check for the default
    /// grid).
    pub fn contains_paper_point_on_frontier(&self) -> bool {
        let paper = DesignPoint::paper_alexnet();
        self.frontier_3d.iter().any(|&i| self.points[i] == paper)
    }
}

/// The exploration engine: a memo cache plus the executor. Reuse one
/// `Explorer` across sweeps to make overlapping grids incremental.
#[derive(Debug, Default)]
pub struct Explorer {
    cache: PointCache,
}

impl Explorer {
    /// A fresh explorer with an empty cache.
    pub fn new() -> Self {
        Explorer::default()
    }

    /// The memo cache (for inspection; sweeps manage it themselves).
    pub fn cache(&self) -> &PointCache {
        &self.cache
    }

    /// Runs `spec` on `threads` worker threads.
    ///
    /// Results come back in deterministic grid order regardless of
    /// `threads`; already-cached points are not re-evaluated.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] when the spec fails validation.
    pub fn run(&mut self, spec: &SweepSpec, threads: usize) -> Result<SweepResult, DseError> {
        spec.validate()?;
        let points = spec.points();
        let before = self.cache.stats();
        let start = Instant::now();
        let outcomes = executor::run(&points, threads, &self.cache)?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let after = self.cache.stats();

        let objectives: Vec<(usize, pareto::Objectives)> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| Some((i, pareto::Objectives::from(o.result()?))))
            .collect();
        let frontier_2d = pareto::frontier_2d(&objectives);
        let frontier_3d = pareto::frontier_3d(&objectives);
        let frontier_sqnr = pareto::frontier_accuracy(&objectives);

        let stats = SweepStats {
            points: points.len(),
            feasible: objectives.len(),
            cache_hits: after.hits - before.hits,
            cache_misses: after.misses - before.misses,
            threads: threads.max(1),
            wall_ms,
        };
        Ok(SweepResult {
            points,
            outcomes,
            frontier_2d,
            frontier_3d,
            frontier_sqnr,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_sweeps_and_keeps_paper_point_on_frontier() {
        let spec = SweepSpec::default_grid();
        let result = Explorer::new()
            .run(&spec, executor::default_threads())
            .unwrap();
        assert!(result.stats.points >= 200);
        assert!(result.stats.feasible > result.stats.points / 2);
        assert!(
            result.contains_paper_point_on_frontier(),
            "paper point dominated; frontier: {:?}",
            result
                .frontier_points()
                .iter()
                .map(|(p, _)| p.to_string())
                .collect::<Vec<_>>()
        );
        // Frontiers are non-trivial: some points survive, some don't.
        assert!(!result.frontier_3d.is_empty());
        assert!(result.frontier_3d.len() < result.stats.feasible);
        // The default grid is one network at one word width, so the
        // SQNR axis is constant and the accuracy frontier degenerates
        // to the fps × power projection.
        assert_eq!(result.frontier_sqnr, result.frontier_2d);
    }

    #[test]
    fn mixed_width_accuracy_frontier_keeps_both_words() {
        let spec = SweepSpec {
            word_bits: vec![8, 16],
            nets: vec!["lenet".into()],
            pes: vec![25, 50],
            ..SweepSpec::paper_point()
        };
        let result = Explorer::new().run(&spec, 2).unwrap();
        let widths_on = |frontier: &[usize]| {
            let mut w: Vec<u32> = frontier
                .iter()
                .map(|&i| result.points[i].word_bits)
                .collect();
            w.sort_unstable();
            w.dedup();
            w
        };
        // fps × power × area: 8-bit dominates (same fps, less of all).
        assert_eq!(widths_on(&result.frontier_3d), vec![8]);
        // fps × power × SQNR: 16-bit survives on measured precision.
        assert_eq!(widths_on(&result.frontier_sqnr), vec![8, 16]);
    }

    #[test]
    fn infeasible_points_are_recorded_not_fatal() {
        let spec = SweepSpec {
            pes: vec![64, 576], // 64 < 121 = 11x11 (AlexNet conv1)
            ..SweepSpec::paper_point()
        };
        let result = Explorer::new().run(&spec, 1).unwrap();
        assert_eq!(result.stats.points, 2);
        assert_eq!(result.stats.feasible, 1);
        assert!(result.outcomes[0].result().is_none());
        assert!(result.outcomes[1].result().is_some());
        assert_eq!(result.frontier_3d, vec![1]);
    }

    #[test]
    fn explorer_cache_carries_across_specs() {
        let mut explorer = Explorer::new();
        let narrow = SweepSpec {
            pes: vec![288, 576],
            nets: vec!["cifar10".into()],
            ..SweepSpec::paper_point()
        };
        let wide = SweepSpec {
            pes: vec![144, 288, 576, 1152],
            nets: vec!["cifar10".into()],
            ..SweepSpec::paper_point()
        };
        let first = explorer.run(&narrow, 2).unwrap();
        assert_eq!(first.stats.cache_misses, 2);
        let second = explorer.run(&wide, 2).unwrap();
        assert_eq!(second.stats.cache_hits, 2);
        assert_eq!(second.stats.cache_misses, 2);
    }

    #[test]
    fn run_rejects_bad_specs() {
        let mut spec = SweepSpec::paper_point();
        spec.pes.clear();
        assert!(Explorer::new().run(&spec, 1).is_err());
    }
}
