//! Multi-network workload mixes: one accelerator serving a weighted
//! set of networks, with the sweep objectives aggregated across the
//! mix.
//!
//! The paper (and the sweeps of PR 1/2) evaluate one network at a
//! time, but a deployed accelerator serves a *traffic mix* — say 70 %
//! AlexNet inferences and 30 % VGG-16. A [`WorkloadMix`] is that
//! weighted set; [`WorkloadMix::aggregate`] folds the per-network
//! [`PointOutcome`]s of one hardware configuration into a single
//! [`MixOutcome`]:
//!
//! * **Throughput** is the weighted *harmonic* mean of the per-network
//!   fps — the steady-state rate of a server interleaving requests in
//!   the mix's proportions (arithmetic means overstate it: time per
//!   frame adds, rates do not).
//! * **Power** is the *maximum* across the mix — the provisioning
//!   number: the supply and thermal envelope must absorb the hungriest
//!   network, not the average.
//! * **Area** (gates, SRAM) is network-independent and must agree
//!   across the per-network evaluations of one configuration.
//!
//! A configuration that cannot run *any* positive-weight network of
//! the mix is infeasible as a whole — an accelerator that falls over
//! on 30 % of traffic is not a candidate. Zero-weight entries are
//! dropped at construction: they contribute no traffic, so they
//! constrain nothing.
//!
//! Each `(configuration, network)` pair goes through the one shared
//! [`PointCache`], so mixes, sweeps and tuner rounds all reuse each
//! other's evaluations.

use std::fmt;

use crate::cache::PointCache;
use crate::eval::{PointOutcome, PointResult};
use crate::executor::evaluate_cached_tracked;
use crate::spec::DesignPoint;
use crate::DseError;

/// One entry of a workload mix: a zoo network and its traffic share.
#[derive(Debug, Clone, PartialEq)]
pub struct MixEntry {
    /// Network name, resolvable via [`crate::network_by_name`].
    pub net: String,
    /// Relative traffic weight (positive; weights need not sum to 1).
    pub weight: f64,
}

/// A weighted set of networks served by one accelerator.
///
/// Entries keep their construction order; the first entry is the
/// **primary** network, used as the canonical identity of a mix
/// candidate (tuner tie-breaks hash the base point under the primary
/// net).
///
/// # Example
///
/// ```
/// use chain_nn_dse::WorkloadMix;
///
/// let mix = WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap();
/// assert_eq!(mix.primary(), "alexnet");
/// assert_eq!(mix.entries().len(), 2);
/// assert_eq!(mix.to_string(), "70% alexnet + 30% vgg16");
/// // Zero-weight entries contribute no traffic and are dropped:
/// let trimmed = WorkloadMix::parse("alexnet:1,vgg16:0").unwrap();
/// assert_eq!(trimmed, WorkloadMix::single("alexnet").unwrap());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    entries: Vec<MixEntry>,
}

impl WorkloadMix {
    /// Builds a mix, validating the entries: every net must resolve,
    /// weights must be finite and non-negative, at least one weight
    /// must be positive, and a network may appear only once.
    /// Zero-weight entries are dropped (no traffic, no constraint).
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] naming the offending entry.
    pub fn new(entries: Vec<MixEntry>) -> Result<Self, DseError> {
        if entries.is_empty() {
            return Err(DseError::Spec("workload mix has no entries".into()));
        }
        for e in &entries {
            if crate::network_by_name(&e.net).is_none() {
                return Err(DseError::Spec(format!("unknown network '{}'", e.net)));
            }
            if !(e.weight.is_finite() && e.weight >= 0.0) {
                return Err(DseError::Spec(format!(
                    "weight {} for '{}' is not a non-negative number",
                    e.weight, e.net
                )));
            }
        }
        let kept: Vec<MixEntry> = entries.into_iter().filter(|e| e.weight > 0.0).collect();
        if kept.is_empty() {
            return Err(DseError::Spec(
                "workload mix has no positive-weight entries".into(),
            ));
        }
        for (i, e) in kept.iter().enumerate() {
            if kept[..i].iter().any(|prev| prev.net == e.net) {
                return Err(DseError::Spec(format!(
                    "network '{}' appears twice in the mix",
                    e.net
                )));
            }
        }
        Ok(WorkloadMix { entries: kept })
    }

    /// The trivial mix: one network, weight 1.
    ///
    /// # Errors
    ///
    /// [`DseError::Spec`] when `net` is not a zoo network.
    pub fn single(net: &str) -> Result<Self, DseError> {
        WorkloadMix::new(vec![MixEntry {
            net: net.to_owned(),
            weight: 1.0,
        }])
    }

    /// Parses the CLI form `"alexnet:0.7,vgg16:0.3"`. The `:weight`
    /// suffix defaults to 1, so `"alexnet"` is the single-net mix and
    /// `"alexnet,vgg16"` weights both equally.
    ///
    /// # Errors
    ///
    /// [`DseError::Spec`] on an empty string, a malformed weight, or
    /// anything [`WorkloadMix::new`] rejects.
    pub fn parse(text: &str) -> Result<Self, DseError> {
        let mut entries = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                return Err(DseError::Spec(format!(
                    "empty entry in workload mix '{text}'"
                )));
            }
            let (net, weight) = match part.split_once(':') {
                None => (part, 1.0),
                Some((net, w)) => (
                    net.trim(),
                    w.trim().parse::<f64>().map_err(|_| {
                        DseError::Spec(format!("cannot parse mix weight '{w}' for '{net}'"))
                    })?,
                ),
            };
            entries.push(MixEntry {
                net: net.to_owned(),
                weight,
            });
        }
        WorkloadMix::new(entries)
    }

    /// The validated, positive-weight entries in construction order.
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    /// The first (primary) network of the mix — the canonical identity
    /// net for a mix candidate's base [`DesignPoint`].
    pub fn primary(&self) -> &str {
        &self.entries[0].net
    }

    /// The per-network design points of one hardware configuration:
    /// `base` with its `net` replaced by each mix entry's, in entry
    /// order. These are the cache keys one mix evaluation touches.
    pub fn points_for(&self, base: &DesignPoint) -> Vec<DesignPoint> {
        self.entries
            .iter()
            .map(|e| DesignPoint {
                net: e.net.clone(),
                ..base.clone()
            })
            .collect()
    }

    /// Folds per-network outcomes (aligned with [`WorkloadMix::entries`])
    /// into the mix outcome. See the module docs for the semantics
    /// (harmonic-mean fps, max power, net-independent area).
    ///
    /// # Panics
    ///
    /// Panics when `outcomes` is not aligned with the entries — that is
    /// a caller bug, not data.
    pub fn aggregate(&self, outcomes: &[PointOutcome]) -> MixOutcome {
        assert_eq!(
            outcomes.len(),
            self.entries.len(),
            "one outcome per mix entry"
        );
        let mut results = Vec::with_capacity(outcomes.len());
        for (entry, outcome) in self.entries.iter().zip(outcomes) {
            match outcome {
                PointOutcome::Feasible(r) => results.push(r),
                PointOutcome::Infeasible(reason) => {
                    return MixOutcome::Infeasible(format!("{}: {reason}", entry.net));
                }
            }
        }
        let total_weight: f64 = self.entries.iter().map(|e| e.weight).sum();
        let inverse_rate: f64 = self
            .entries
            .iter()
            .zip(&results)
            .map(|(e, r)| e.weight / r.fps)
            .sum();
        // The hungriest network sets the envelope; report that
        // network's full power split so chip + dram stays coherent.
        let hungriest = results
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.system_mw().total_cmp(&b.system_mw()))
            .map(|(i, _)| i)
            .expect("at least one entry");
        let worst = results[hungriest];
        // Accuracy, like power, is provisioned for the worst case: the
        // mix is only as precise as its least-precise network.
        let sqnr_db = results
            .iter()
            .map(|r| r.sqnr_db)
            .fold(f64::INFINITY, f64::min);
        MixOutcome::Feasible(MixResult {
            fps: total_weight / inverse_rate,
            chip_mw: worst.chip_mw,
            dram_mw: worst.dram_mw,
            peak_gops: worst.peak_gops,
            gates_k: worst.gates_k,
            sram_kb: worst.sram_kb,
            sqnr_db,
        })
    }
}

impl fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total: f64 = self.entries.iter().map(|e| e.weight).sum();
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{:.0}% {}", 100.0 * e.weight / total, e.net)?;
        }
        Ok(())
    }
}

/// Aggregated model outputs of one configuration over a workload mix.
/// For a single-net mix this is exactly the per-point [`PointResult`]
/// restricted to the shared fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixResult {
    /// Weighted harmonic-mean frames per second across the mix.
    pub fps: f64,
    /// On-chip power of the hungriest network, mW.
    pub chip_mw: f64,
    /// DRAM interface power of that same network, mW.
    pub dram_mw: f64,
    /// Peak throughput of the configuration, GOPS (net-independent).
    pub peak_gops: f64,
    /// Chain logic area, NAND2-equivalent kilo-gates (net-independent).
    pub gates_k: f64,
    /// Total on-chip SRAM, KB (net-independent).
    pub sram_kb: f64,
    /// Worst (minimum) measured SQNR across the mix, dB — the mix is
    /// only as precise as its least-precise network at this word width.
    pub sqnr_db: f64,
}

impl MixResult {
    /// Worst-case system power across the mix: on-chip plus DRAM
    /// interface, mW. The provisioning number budgets constrain.
    pub fn system_mw(&self) -> f64 {
        self.chip_mw + self.dram_mw
    }

    /// Whole-chip energy efficiency at the worst-case power, peak GOPS
    /// per on-chip watt.
    pub fn gops_per_watt(&self) -> f64 {
        self.peak_gops / (self.chip_mw / 1e3)
    }
}

impl From<&PointResult> for MixResult {
    fn from(r: &PointResult) -> Self {
        MixResult {
            fps: r.fps,
            chip_mw: r.chip_mw,
            dram_mw: r.dram_mw,
            peak_gops: r.peak_gops,
            gates_k: r.gates_k,
            sram_kb: r.sram_kb,
            sqnr_db: r.sqnr_db,
        }
    }
}

/// Outcome of one configuration over a mix: feasible on every
/// positive-weight network, or infeasible with the first failing
/// network named.
#[derive(Debug, Clone, PartialEq)]
pub enum MixOutcome {
    /// Every network of the mix maps; aggregated metrics attached.
    Feasible(MixResult),
    /// Some network of the mix cannot run on this configuration.
    Infeasible(String),
}

impl MixOutcome {
    /// The aggregated result, if feasible.
    pub fn result(&self) -> Option<&MixResult> {
        match self {
            MixOutcome::Feasible(r) => Some(r),
            MixOutcome::Infeasible(_) => None,
        }
    }
}

/// Evaluates one configuration over a mix through `cache`, returning
/// the aggregate plus this call's `(hits, misses)` cache traffic. The
/// `net` field of `base` is ignored — the mix decides the networks.
///
/// # Errors
///
/// Propagates spec-level evaluation errors ([`DseError`]);
/// model-level infeasibility is data.
pub fn evaluate_mix(
    base: &DesignPoint,
    mix: &WorkloadMix,
    cache: &PointCache,
) -> Result<(MixOutcome, u64, u64), DseError> {
    let mut outcomes = Vec::with_capacity(mix.entries().len());
    let (mut hits, mut misses) = (0u64, 0u64);
    for point in mix.points_for(base) {
        let (outcome, hit) = evaluate_cached_tracked(&point, cache)?;
        if hit {
            hits += 1;
        } else {
            misses += 1;
        }
        outcomes.push(outcome);
    }
    Ok((mix.aggregate(&outcomes), hits, misses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;

    fn feasible(fps: f64, chip: f64, dram: f64) -> PointOutcome {
        feasible_sqnr(fps, chip, dram, 60.0)
    }

    fn feasible_sqnr(fps: f64, chip: f64, dram: f64, sqnr: f64) -> PointOutcome {
        PointOutcome::Feasible(PointResult {
            fps,
            achieved_gops: fps,
            peak_gops: 100.0,
            chip_mw: chip,
            dram_mw: dram,
            gates_k: 500.0,
            sram_kb: 57.0,
            sqnr_db: sqnr,
        })
    }

    #[test]
    fn parse_forms_and_validation() {
        let mix = WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap();
        assert_eq!(mix.entries().len(), 2);
        assert_eq!(mix.primary(), "alexnet");
        assert_eq!(WorkloadMix::parse("alexnet").unwrap().entries().len(), 1);
        let equal = WorkloadMix::parse("alexnet,vgg16").unwrap();
        assert_eq!(equal.entries()[0].weight, equal.entries()[1].weight);

        assert!(WorkloadMix::parse("").is_err());
        assert!(WorkloadMix::parse("alexnet:fast").is_err());
        assert!(WorkloadMix::parse("squeezenet").is_err());
        assert!(WorkloadMix::parse("alexnet:-1").is_err());
        assert!(WorkloadMix::parse("alexnet:0.5,alexnet:0.5").is_err());
        assert!(WorkloadMix::parse("alexnet:0,vgg16:0").is_err());
    }

    #[test]
    fn zero_weight_entries_are_dropped() {
        let mix = WorkloadMix::parse("alexnet:1,vgg16:0").unwrap();
        assert_eq!(mix.entries().len(), 1);
        assert_eq!(mix.primary(), "alexnet");
        // Equivalent to the mix that never mentioned the zero net.
        assert_eq!(mix, WorkloadMix::single("alexnet").unwrap());
        // And a zero-weight net's infeasibility cannot poison the mix:
        // lenet needs few PEs, vgg16 at weight 0 is simply absent.
        let cache = PointCache::new();
        let base = DesignPoint {
            pes: 25,
            ..DesignPoint::paper_alexnet()
        };
        let mix = WorkloadMix::parse("lenet:1,vgg16:0").unwrap();
        let (outcome, _, _) = evaluate_mix(&base, &mix, &cache).unwrap();
        assert!(outcome.result().is_some(), "{outcome:?}");
    }

    #[test]
    fn single_net_mix_equals_plain_eval() {
        let mix = WorkloadMix::single("alexnet").unwrap();
        let base = DesignPoint::paper_alexnet();
        let cache = PointCache::new();
        let (outcome, hits, misses) = evaluate_mix(&base, &mix, &cache).unwrap();
        assert_eq!((hits, misses), (0, 1));
        let mixed = *outcome.result().expect("paper point feasible");
        let plain = evaluate(&base).unwrap();
        let plain = plain.result().expect("feasible");
        assert_eq!(mixed, MixResult::from(plain));
        assert_eq!(mixed.fps.to_bits(), plain.fps.to_bits());
        assert_eq!(mixed.system_mw().to_bits(), plain.system_mw().to_bits());
    }

    #[test]
    fn aggregate_is_harmonic_fps_and_max_power() {
        let mix = WorkloadMix::parse("alexnet:3,vgg16:1").unwrap();
        // alexnet: 100 fps @ 400+50 mW; vgg16: 20 fps @ 600+100 mW.
        let outcome = mix.aggregate(&[feasible(100.0, 400.0, 50.0), feasible(20.0, 600.0, 100.0)]);
        let r = *outcome.result().unwrap();
        // Weighted harmonic mean: 4 / (3/100 + 1/20) = 50.
        assert!((r.fps - 50.0).abs() < 1e-12, "fps {}", r.fps);
        assert_eq!(r.chip_mw, 600.0);
        assert_eq!(r.dram_mw, 100.0);
        assert_eq!(r.system_mw(), 700.0);
    }

    #[test]
    fn aggregate_takes_the_worst_sqnr() {
        let mix = WorkloadMix::parse("alexnet:1,vgg16:1").unwrap();
        let outcome = mix.aggregate(&[
            feasible_sqnr(100.0, 400.0, 50.0, 72.5),
            feasible_sqnr(20.0, 600.0, 100.0, 31.0),
        ]);
        assert_eq!(outcome.result().unwrap().sqnr_db, 31.0);
    }

    #[test]
    fn any_infeasible_net_makes_the_mix_infeasible() {
        let mix = WorkloadMix::parse("alexnet:1,vgg16:1").unwrap();
        let outcome = mix.aggregate(&[
            feasible(100.0, 400.0, 50.0),
            PointOutcome::Infeasible("chain too short".into()),
        ]);
        match outcome {
            MixOutcome::Infeasible(reason) => {
                assert!(reason.contains("vgg16"), "{reason}");
                assert!(reason.contains("chain too short"), "{reason}");
            }
            MixOutcome::Feasible(_) => panic!("mix must be infeasible"),
        }
    }

    #[test]
    fn evaluate_mix_reuses_the_cache_per_config_net_pair() {
        let mix = WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap();
        let base = DesignPoint::paper_alexnet();
        let cache = PointCache::new();
        let (_, hits, misses) = evaluate_mix(&base, &mix, &cache).unwrap();
        assert_eq!((hits, misses), (0, 2));
        let (again, hits, misses) = evaluate_mix(&base, &mix, &cache).unwrap();
        assert_eq!((hits, misses), (2, 0));
        assert!(again.result().is_some());
        // The ignored base net aliases onto the mix nets: a base already
        // carrying "vgg16" touches the same two cache keys.
        let vgg_base = DesignPoint {
            net: "vgg16".into(),
            ..base
        };
        let (_, hits, misses) = evaluate_mix(&vgg_base, &mix, &cache).unwrap();
        assert_eq!((hits, misses), (2, 0));
    }

    #[test]
    fn display_shows_percentages() {
        let mix = WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap();
        assert_eq!(mix.to_string(), "70% alexnet + 30% vgg16");
    }
}
