//! The one-shot sweep entry point over the work-assisting engine.
//!
//! A sweep is an embarrassingly parallel bag of independent point
//! evaluations. [`run`] submits the whole point list as a single job
//! to a private [`engine::Engine`](crate::engine::Engine) in drain
//! mode and lends it N scoped `std::thread`s: workers claim index
//! ranges off the job's atomic cursor (large claims while plenty
//! remains, shrinking near the tail so the pool finishes together)
//! and keep `(index, outcome)` pairs locally; the merged results are
//! sorted by index, so output order — and therefore every exported
//! artifact — is byte-identical regardless of thread count or
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crate::cache::PointCache;
use crate::engine::{ClaimPolicy, Engine, EngineMetrics, TraceRef};
use crate::eval::{evaluate, PointOutcome};
use crate::spec::DesignPoint;
use crate::DseError;

/// A sensible worker count for this host (`available_parallelism`,
/// falling back to 1 when the host will not say).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Evaluates one point through `cache`: answer from memory when
/// present, otherwise evaluate and memoize. This is the single
/// evaluation step both the sweep executor below and the serving
/// daemon's batch scheduler (`chain-nn-serve`) are built from.
///
/// # Errors
///
/// Propagates spec-level evaluation errors (unknown network, invalid
/// chain parameters); infeasibility is data, not an error.
pub fn evaluate_cached(point: &DesignPoint, cache: &PointCache) -> Result<PointOutcome, DseError> {
    Ok(evaluate_cached_tracked(point, cache)?.0)
}

/// [`evaluate_cached`], also reporting whether the answer came from the
/// cache (`true` = hit). Callers that serve several clients off one
/// cache (the daemon) need the per-call answer: deltas of the global
/// counters cross-contaminate between concurrent requests.
///
/// # Errors
///
/// Same contract as [`evaluate_cached`].
pub fn evaluate_cached_tracked(
    point: &DesignPoint,
    cache: &PointCache,
) -> Result<(PointOutcome, bool), DseError> {
    match cache.get(point) {
        Some(hit) => Ok((hit, true)),
        None => {
            let fresh = evaluate(point)?;
            cache.insert(point, fresh.clone());
            Ok((fresh, false))
        }
    }
}

/// Evaluates every point, `threads` at a time, memoizing through
/// `cache`. Returns outcomes in point order.
///
/// # Errors
///
/// Returns the first spec-level error encountered (unknown network,
/// invalid chain parameters); model-level infeasibility is data, not an
/// error.
///
/// # Example
///
/// ```
/// use chain_nn_dse::{executor, DesignPoint, PointCache};
///
/// let points: Vec<DesignPoint> = [25usize, 50]
///     .iter()
///     .map(|&pes| DesignPoint {
///         net: "lenet".into(),
///         pes,
///         ..DesignPoint::paper_alexnet()
///     })
///     .collect();
/// let cache = PointCache::new();
/// let outcomes = executor::run(&points, 2, &cache).unwrap();
/// assert_eq!(outcomes.len(), 2); // grid order, any thread count
/// assert_eq!(cache.stats().misses, 2);
/// // The same batch again is answered entirely from the cache.
/// assert_eq!(executor::run(&points, 2, &cache).unwrap(), outcomes);
/// assert_eq!(cache.stats().hits, 2);
/// ```
pub fn run(
    points: &[DesignPoint],
    threads: usize,
    cache: &PointCache,
) -> Result<Vec<PointOutcome>, DseError> {
    let threads = threads.max(1).min(points.len().max(1));
    let obs = chain_nn_obs::global();
    // A standalone run owns its own trace: one root span for the whole
    // sweep, one `chunk` child per claim tagged with the worker that
    // executed it, so the run renders as a per-worker timeline.
    // Disabled rings skip even the id allocation.
    let spans = chain_nn_obs::trace::spans();
    let trace = spans.is_enabled().then(|| {
        (
            chain_nn_obs::trace::next_trace_id(),
            chain_nn_obs::trace::next_span_id(),
        )
    });
    let started = Instant::now();

    // One private engine in drain mode: submit the sweep as its only
    // job, shut admission, and lend it the calling thread(s) until the
    // job is fully claimed. Claim metrics land in the global registry
    // under the `dse` prefix (`dse_batch_eval_ns`, `dse_claim_points`,
    // `dse_batches_total`, `dse_points_total`).
    let engine = Engine::with_metrics(
        1,
        ClaimPolicy::adaptive(),
        EngineMetrics::register(obs, "dse"),
        "chunk",
    );
    let handle = engine
        .submit_traced(
            points.to_vec(),
            trace.map(|(trace_id, root)| TraceRef {
                trace_id,
                parent_span: root,
            }),
        )
        .expect("a fresh engine admits its first job");
    engine.begin_shutdown();
    if threads == 1 {
        engine.worker_loop(cache);
    } else {
        std::thread::scope(|scope| {
            for w in 0..threads {
                let engine = &engine;
                scope.spawn(move || engine.worker_loop_indexed(w as u32, cache));
            }
        });
    }
    let job = handle.wait()?;

    let elapsed = started.elapsed();
    if let Some((trace_id, root)) = trace {
        spans.record(&chain_nn_obs::trace::Span {
            trace_id,
            span_id: root,
            parent_id: 0,
            name: "dse_run",
            start: started,
            dur: elapsed,
            worker: None,
            points: points.len().min(u32::MAX as usize) as u32,
        });
    }
    obs.histogram("dse_run_ns").record_duration(elapsed);
    obs.gauge("dse_points_per_sec")
        .set(points.len() as f64 / elapsed.as_secs_f64().max(1e-12));
    obs.gauge("dse_cache_hit_rate")
        .set(cache.stats().hit_rate());
    Ok(job.outcomes)
}

/// Measures raw evaluation throughput (points evaluated per second):
/// performs `evals` uncached evaluations cycling through `points`,
/// spawning each worker exactly once so thread start-up cost is
/// amortized away. This is the honest way to compare thread counts —
/// a single sweep of a few hundred closed-form model points finishes
/// in well under a millisecond, which is below the cost of spawning
/// the workers themselves.
///
/// # Errors
///
/// Returns [`DseError::Spec`] for an empty point list or any
/// spec-level evaluation error.
pub fn throughput(points: &[DesignPoint], threads: usize, evals: usize) -> Result<f64, DseError> {
    if points.is_empty() {
        return Err(DseError::Spec("cannot measure an empty point list".into()));
    }
    let threads = threads.max(1);
    let cursor = AtomicUsize::new(0);
    let worker = || -> Result<(), DseError> {
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= evals {
                return Ok(());
            }
            std::hint::black_box(evaluate(&points[i % points.len()])?);
        }
    };
    let start = Instant::now();
    if threads == 1 {
        worker()?;
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
            let mut first_err = None;
            for handle in handles {
                if let Err(e) = handle.join().expect("worker thread panicked") {
                    first_err = first_err.or(Some(e));
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(()),
            }
        })?;
    }
    Ok(evals as f64 / start.elapsed().as_secs_f64().max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn small_grid() -> Vec<DesignPoint> {
        SweepSpec {
            pes: vec![144, 288, 576],
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        }
        .points()
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let points = small_grid();
        let serial = run(&points, 1, &PointCache::new()).unwrap();
        let parallel = run(&points, 4, &PointCache::new()).unwrap();
        let oversubscribed = run(&points, 64, &PointCache::new()).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, oversubscribed);
        assert_eq!(serial.len(), points.len());
    }

    #[test]
    fn cache_makes_second_run_all_hits() {
        let points = small_grid();
        let cache = PointCache::new();
        let first = run(&points, 2, &cache).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, points.len() as u64);
        assert_eq!(stats.hits, 0);
        let second = run(&points, 2, &cache).unwrap();
        assert_eq!(first, second);
        let stats = cache.stats();
        assert_eq!(stats.hits, points.len() as u64);
        assert_eq!(stats.misses, points.len() as u64);
    }

    #[test]
    fn overlapping_sweep_is_incremental() {
        let cache = PointCache::new();
        let base = small_grid();
        run(&base, 2, &cache).unwrap();
        // A wider sweep sharing the three original PE counts.
        let wider = SweepSpec {
            pes: vec![144, 288, 576, 1152],
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        }
        .points();
        run(&wider, 2, &cache).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, base.len() as u64, "shared points must hit");
        assert_eq!(
            stats.misses,
            wider.len() as u64 + base.len() as u64 - stats.hits
        );
    }

    #[test]
    fn throughput_probe_measures_and_validates() {
        let points = small_grid();
        let rate = throughput(&points, 2, 50).unwrap();
        assert!(rate > 0.0);
        assert!(throughput(&[], 2, 50).is_err());
        let mut bad = small_grid();
        bad[0].net = "notanet".into();
        assert!(throughput(&bad, 2, 50).is_err());
    }

    #[test]
    fn spec_error_propagates() {
        let mut points = small_grid();
        points[1].net = "notanet".into();
        assert!(run(&points, 2, &PointCache::new()).is_err());
    }

    #[test]
    fn empty_queue_is_fine() {
        assert_eq!(run(&[], 8, &PointCache::new()).unwrap(), vec![]);
    }
}
