//! Sweep specifications: the grid of design points to explore.
//!
//! A [`SweepSpec`] is a cartesian grid over the architectural knobs the
//! model stack understands — chain length and clock (`ChainConfig`),
//! on-chip SRAM sizes (`MemoryConfig`), operand word width (the
//! quantization the traffic/power models see), batch size and network.
//! [`SweepSpec::points`] flattens the grid into a deterministic,
//! stable-ordered list of [`DesignPoint`]s.

use std::fmt;
use std::str::FromStr;

use crate::DseError;

/// One fully-specified candidate accelerator + workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Chain length in PEs.
    pub pes: usize,
    /// Core clock in MHz.
    pub freq_mhz: f64,
    /// Kernel weights per PE (kMemory depth).
    pub kmem_depth: usize,
    /// iMemory capacity in KB.
    pub imem_kb: usize,
    /// oMemory capacity in KB.
    pub omem_kb: usize,
    /// Operand word width in bits (the paper's datapath is 16).
    pub word_bits: u32,
    /// Batch size (kernel loads amortize across a batch).
    pub batch: usize,
    /// Network name, resolvable via [`crate::network_by_name`].
    pub net: String,
}

impl DesignPoint {
    /// The paper's evaluation point: 576 PEs @ 700 MHz, 256-deep
    /// kMemory, 32 + 25 KB SRAM, 16-bit words, AlexNet at batch 4.
    pub fn paper_alexnet() -> Self {
        DesignPoint {
            pes: 576,
            freq_mhz: 700.0,
            kmem_depth: 256,
            imem_kb: 32,
            omem_kb: 25,
            word_bits: 16,
            batch: 4,
            net: "alexnet".to_owned(),
        }
    }

    /// Canonical byte encoding of the point — the input to
    /// [`DesignPoint::content_hash`] and the cache identity. Every field
    /// participates; floats are encoded by their exact bit pattern.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&(self.pes as u64).to_le_bytes());
        out.extend_from_slice(&self.freq_mhz.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.kmem_depth as u64).to_le_bytes());
        out.extend_from_slice(&(self.imem_kb as u64).to_le_bytes());
        out.extend_from_slice(&(self.omem_kb as u64).to_le_bytes());
        out.extend_from_slice(&self.word_bits.to_le_bytes());
        out.extend_from_slice(&(self.batch as u64).to_le_bytes());
        out.extend_from_slice(self.net.as_bytes());
        out
    }

    /// Stable FNV-1a content hash of the canonical encoding. Two points
    /// hash equal iff (modulo 64-bit collisions, which the cache guards
    /// against) they describe the same configuration.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.canonical_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pes={} f={}MHz kmem={} sram={}+{}KB w{} b{}",
            self.net,
            self.pes,
            self.freq_mhz,
            self.kmem_depth,
            self.imem_kb,
            self.omem_kb,
            self.word_bits,
            self.batch
        )
    }
}

/// A swept axis parsed from CLI text: either an inclusive range with an
/// optional step (`64..=1024`, `64..=1024:32`, also `..` for exclusive)
/// or an explicit comma list (`144,288,576`). A bare number is a
/// one-element axis.
///
/// # Example
///
/// ```
/// use chain_nn_dse::RangeSpec;
///
/// let axis: RangeSpec = "64..=128:32".parse().unwrap();
/// assert_eq!(axis.values(), &[64, 96, 128]);
/// let list: RangeSpec = "144,288,576".parse().unwrap();
/// assert_eq!(list.as_usizes(), vec![144, 288, 576]);
/// assert!("10..=5".parse::<RangeSpec>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeSpec {
    values: Vec<u64>,
}

impl RangeSpec {
    /// The expanded axis values, in the order given.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The axis as `usize`s.
    pub fn as_usizes(&self) -> Vec<usize> {
        self.values.iter().map(|&v| v as usize).collect()
    }

    /// Builds an inclusive stepped range axis programmatically.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] on a zero step or an empty range.
    pub fn stepped(start: u64, end_inclusive: u64, step: u64) -> Result<Self, DseError> {
        if step == 0 {
            return Err(DseError::Spec("range step must be non-zero".into()));
        }
        if start > end_inclusive {
            return Err(DseError::Spec(format!(
                "empty range {start}..={end_inclusive}"
            )));
        }
        let values = (start..=end_inclusive).step_by(step as usize).collect();
        Ok(RangeSpec { values })
    }
}

impl FromStr for RangeSpec {
    type Err = DseError;

    fn from_str(s: &str) -> Result<Self, DseError> {
        let bad =
            |what: &str| DseError::Spec(format!("cannot parse '{s}' as a sweep axis: {what}"));
        let (range_part, step) = match s.split_once(':') {
            Some((r, st)) => (
                r,
                Some(
                    st.trim()
                        .parse::<u64>()
                        .map_err(|_| bad("step is not a number"))?,
                ),
            ),
            None => (s, None),
        };
        let parse_num = |t: &str| t.trim().parse::<u64>().map_err(|_| bad("not a number"));
        if let Some((lo, hi)) = range_part.split_once("..") {
            let (hi, inclusive) = match hi.strip_prefix('=') {
                Some(rest) => (rest, true),
                None => (hi, false),
            };
            let lo = parse_num(lo)?;
            let mut hi = parse_num(hi)?;
            if !inclusive {
                if hi == 0 {
                    return Err(bad("empty exclusive range"));
                }
                hi -= 1;
            }
            return RangeSpec::stepped(lo, hi, step.unwrap_or(1));
        }
        if step.is_some() {
            return Err(bad("':step' only applies to ranges"));
        }
        let values = range_part
            .split(',')
            .map(parse_num)
            .collect::<Result<Vec<_>, _>>()?;
        if values.is_empty() {
            return Err(bad("no values"));
        }
        Ok(RangeSpec { values })
    }
}

/// One hash-partition of a sweep grid: shard `index` of `of` shards.
/// A partitioned spec keeps only the grid points whose
/// [`DesignPoint::content_hash`] lands on this shard (`hash % of ==
/// index`), while point *indices* stay global — shard results can be
/// merged back into the full grid's index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPart {
    /// This shard's slot, `0..of`.
    pub index: usize,
    /// Total number of shards.
    pub of: usize,
}

impl SweepPart {
    /// Whether `point` belongs to this partition.
    #[must_use]
    pub fn owns(&self, point: &DesignPoint) -> bool {
        self.of <= 1 || point.content_hash() % self.of as u64 == self.index as u64
    }
}

/// The full sweep grid. Every `Vec` is one axis; [`SweepSpec::points`]
/// takes the cartesian product in a fixed nesting order (net, batch,
/// word bits, oMemory, iMemory, kMemory depth, frequency, PEs — PEs
/// vary fastest), so point indices are stable across runs and thread
/// counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Chain lengths to sweep.
    pub pes: Vec<usize>,
    /// Clock frequencies (MHz) to sweep.
    pub freqs_mhz: Vec<f64>,
    /// kMemory depths (weights per PE) to sweep.
    pub kmem_depths: Vec<usize>,
    /// iMemory capacities (KB) to sweep.
    pub imem_kb: Vec<usize>,
    /// oMemory capacities (KB) to sweep.
    pub omem_kb: Vec<usize>,
    /// Operand word widths (bits) to sweep. 16 is the paper datapath;
    /// narrower words shrink traffic and memory power **and pay a
    /// measured accuracy cost**: every evaluated point carries the
    /// SQNR of its `(network, width)` pair ([`crate::accuracy`],
    /// DESIGN.md §11), so mixed-width sweeps are directly comparable
    /// on the fps × power × SQNR frontier.
    pub word_bits: Vec<u32>,
    /// Batch sizes to sweep.
    pub batches: Vec<usize>,
    /// Networks (zoo names) to sweep.
    pub nets: Vec<String>,
    /// When set, restrict the grid to one content-hash partition: only
    /// points with `content_hash % part.of == part.index` are emitted
    /// by [`SweepSpec::points`], with global indices preserved by
    /// [`SweepSpec::indexed_points`]. `None` is the whole grid.
    pub part: Option<SweepPart>,
}

impl SweepSpec {
    /// A single-point "sweep" fixing every axis at the paper's choice.
    pub fn paper_point() -> Self {
        let p = DesignPoint::paper_alexnet();
        SweepSpec {
            pes: vec![p.pes],
            freqs_mhz: vec![p.freq_mhz],
            kmem_depths: vec![p.kmem_depth],
            imem_kb: vec![p.imem_kb],
            omem_kb: vec![p.omem_kb],
            word_bits: vec![p.word_bits],
            batches: vec![p.batch],
            nets: vec![p.net],
            part: None,
        }
    }

    /// The default exploration grid: PEs 64..=1024 step 16, two clocks,
    /// two batch sizes, the paper kMemory/SRAM sizes and word width,
    /// AlexNet. 244 points, containing the paper configuration.
    ///
    /// kMemory depth is deliberately *not* swept by default: on AlexNet
    /// at batch 4 a 128-deep kMemory incurs no extra DRAM traffic, so
    /// it strictly dominates the paper's 256 (less leakage, fewer
    /// gates) and would knock the paper point off the frontier — the
    /// 256-weight choice is motivated by VGG-16's C=512 layers, not by
    /// AlexNet. Sweep it explicitly (`kmem_depths`) to see that trade.
    pub fn default_grid() -> Self {
        SweepSpec {
            pes: (64..=1024).step_by(16).collect(),
            freqs_mhz: vec![350.0, 700.0],
            batches: vec![1, 4],
            ..SweepSpec::paper_point()
        }
    }

    /// Checks that every axis is non-empty and physically sensible.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] naming the offending axis.
    pub fn validate(&self) -> Result<(), DseError> {
        let axis_err = |name: &str| DseError::Spec(format!("sweep axis '{name}' is empty"));
        if self.pes.is_empty() {
            return Err(axis_err("pes"));
        }
        if self.freqs_mhz.is_empty() {
            return Err(axis_err("freqs_mhz"));
        }
        if self.kmem_depths.is_empty() {
            return Err(axis_err("kmem_depths"));
        }
        if self.imem_kb.is_empty() {
            return Err(axis_err("imem_kb"));
        }
        if self.omem_kb.is_empty() {
            return Err(axis_err("omem_kb"));
        }
        if self.word_bits.is_empty() {
            return Err(axis_err("word_bits"));
        }
        if self.batches.is_empty() {
            return Err(axis_err("batches"));
        }
        if self.nets.is_empty() {
            return Err(axis_err("nets"));
        }
        for &b in &self.word_bits {
            // Sub-byte packing is not modeled: MemoryConfig counts whole
            // bytes per word, so a 4-bit word would silently behave like
            // an 8-bit one in every capacity/traffic model.
            if !matches!(b, 8 | 16) {
                return Err(DseError::Spec(format!(
                    "word width {b} unsupported (expected 8 or 16 bits)"
                )));
            }
        }
        for &f in &self.freqs_mhz {
            if !(f.is_finite() && f > 0.0) {
                return Err(DseError::Spec(format!("frequency {f} MHz is not positive")));
            }
        }
        for name in &self.nets {
            if crate::network_by_name(name).is_none() {
                return Err(DseError::Spec(format!("unknown network '{name}'")));
            }
        }
        if let Some(part) = &self.part {
            if part.of == 0 {
                return Err(DseError::Spec("sweep partition 'of' must be >= 1".into()));
            }
            if part.index >= part.of {
                return Err(DseError::Spec(format!(
                    "sweep partition index {} out of range (of {})",
                    part.index, part.of
                )));
            }
        }
        Ok(())
    }

    /// Number of points in the *full* grid, ignoring any partition —
    /// the index space shard results merge back into. The partitioned
    /// point count is `points().len()`.
    pub fn len(&self) -> usize {
        self.pes.len()
            * self.freqs_mhz.len()
            * self.kmem_depths.len()
            * self.imem_kb.len()
            * self.omem_kb.len()
            * self.word_bits.len()
            * self.batches.len()
            * self.nets.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens the grid into its deterministic point list. With a
    /// partition set, only this shard's points are emitted (in the same
    /// global order).
    pub fn points(&self) -> Vec<DesignPoint> {
        self.indexed_points().into_iter().map(|(_, p)| p).collect()
    }

    /// Like [`SweepSpec::points`], but each point is paired with its
    /// *global* grid index — the index it has in the unpartitioned
    /// grid. For an unpartitioned spec the indices are simply
    /// `0..len()`; for a partition they are the subsequence owned by
    /// this shard, still ascending, so per-shard frontier indices can
    /// be merged across shards without translation.
    pub fn indexed_points(&self) -> Vec<(usize, DesignPoint)> {
        let mut out = Vec::new();
        let mut index = 0usize;
        for net in &self.nets {
            for &batch in &self.batches {
                for &word_bits in &self.word_bits {
                    for &omem_kb in &self.omem_kb {
                        for &imem_kb in &self.imem_kb {
                            for &kmem_depth in &self.kmem_depths {
                                for &freq_mhz in &self.freqs_mhz {
                                    for &pes in &self.pes {
                                        let point = DesignPoint {
                                            pes,
                                            freq_mhz,
                                            kmem_depth,
                                            imem_kb,
                                            omem_kb,
                                            word_bits,
                                            batch,
                                            net: net.clone(),
                                        };
                                        if self.part.as_ref().is_none_or(|p| p.owns(&point)) {
                                            out.push((index, point));
                                        }
                                        index += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_spec_parses_all_forms() {
        let r: RangeSpec = "64..=128:32".parse().unwrap();
        assert_eq!(r.values(), &[64, 96, 128]);
        let r: RangeSpec = "64..=67".parse().unwrap();
        assert_eq!(r.values(), &[64, 65, 66, 67]);
        let r: RangeSpec = "64..67".parse().unwrap();
        assert_eq!(r.values(), &[64, 65, 66]);
        let r: RangeSpec = "144,288,576".parse().unwrap();
        assert_eq!(r.values(), &[144, 288, 576]);
        let r: RangeSpec = "576".parse().unwrap();
        assert_eq!(r.values(), &[576]);
    }

    #[test]
    fn range_spec_rejects_malformed() {
        assert!("".parse::<RangeSpec>().is_err());
        assert!("ten..=20".parse::<RangeSpec>().is_err());
        assert!("10..=5".parse::<RangeSpec>().is_err());
        assert!("10..=20:0".parse::<RangeSpec>().is_err());
        assert!("1,2:4".parse::<RangeSpec>().is_err());
    }

    #[test]
    fn range_spec_empty_ranges_are_rejected() {
        // Exclusive ranges whose bounds touch or cross contain nothing.
        assert!("5..5".parse::<RangeSpec>().is_err());
        assert!("0..0".parse::<RangeSpec>().is_err());
        assert!("7..5".parse::<RangeSpec>().is_err());
        // Inclusive single-value range is NOT empty.
        let r: RangeSpec = "5..=5".parse().unwrap();
        assert_eq!(r.values(), &[5]);
        // And the programmatic constructor agrees.
        assert!(RangeSpec::stepped(10, 5, 1).is_err());
        assert_eq!(RangeSpec::stepped(5, 5, 1).unwrap().values(), &[5]);
    }

    #[test]
    fn range_spec_step_larger_than_span_keeps_the_start() {
        let r: RangeSpec = "10..=20:50".parse().unwrap();
        assert_eq!(r.values(), &[10]);
        let r: RangeSpec = "10..12:50".parse().unwrap();
        assert_eq!(r.values(), &[10]);
        assert_eq!(RangeSpec::stepped(64, 65, 1000).unwrap().values(), &[64]);
    }

    #[test]
    fn range_spec_zero_step_is_rejected_everywhere() {
        // All syntactic forms of a ':0' step, plus the API.
        assert!(matches!(
            "10..=20:0".parse::<RangeSpec>(),
            Err(DseError::Spec(m)) if m.contains("step")
        ));
        assert!("10..20:0".parse::<RangeSpec>().is_err());
        assert!("10..=20: 0".parse::<RangeSpec>().is_err());
        assert!(matches!(
            RangeSpec::stepped(10, 20, 0),
            Err(DseError::Spec(m)) if m.contains("non-zero")
        ));
        // A zero *value* is fine; only a zero step is not.
        assert_eq!("0".parse::<RangeSpec>().unwrap().values(), &[0]);
    }

    #[test]
    fn default_grid_contains_paper_point() {
        let spec = SweepSpec::default_grid();
        spec.validate().unwrap();
        assert!(spec.len() >= 200, "only {} points", spec.len());
        let paper = DesignPoint::paper_alexnet();
        assert!(
            spec.points().contains(&paper),
            "paper point missing from default grid"
        );
    }

    #[test]
    fn point_order_is_deterministic_and_dense() {
        let spec = SweepSpec {
            pes: vec![9, 18],
            freqs_mhz: vec![100.0, 200.0],
            ..SweepSpec::paper_point()
        };
        let pts = spec.points();
        assert_eq!(pts.len(), spec.len());
        assert_eq!(pts.len(), 4);
        // PEs vary fastest.
        assert_eq!((pts[0].pes, pts[0].freq_mhz), (9, 100.0));
        assert_eq!((pts[1].pes, pts[1].freq_mhz), (18, 100.0));
        assert_eq!((pts[2].pes, pts[2].freq_mhz), (9, 200.0));
        assert_eq!(pts, spec.points());
    }

    #[test]
    fn content_hash_separates_and_identifies() {
        let a = DesignPoint::paper_alexnet();
        let mut b = a.clone();
        assert_eq!(a.content_hash(), b.content_hash());
        b.pes = 577;
        assert_ne!(a.content_hash(), b.content_hash());
        let mut c = a.clone();
        c.freq_mhz = 700.0000001;
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn validate_names_the_bad_axis() {
        let mut spec = SweepSpec::paper_point();
        spec.word_bits = vec![12];
        assert!(matches!(spec.validate(), Err(DseError::Spec(m)) if m.contains("12")));
        let mut spec = SweepSpec::paper_point();
        spec.nets = vec!["squeezenet".into()];
        assert!(spec.validate().is_err());
        let mut spec = SweepSpec::paper_point();
        spec.batches.clear();
        assert!(matches!(spec.validate(), Err(DseError::Spec(m)) if m.contains("batches")));
    }
}
