//! Measured quantization accuracy: the DSE's SQNR axis.
//!
//! The paper validates its 16-bit fixed-point datapath by comparing a
//! float reference against the fixed-point simulator (§V.A) and
//! reporting the quantization error. Until this module existed, the
//! DSE's operand-width axis charged narrow words *nothing* for the
//! precision they give up, so 8-bit points dominated 16-bit points on
//! every modeled objective (the old DESIGN.md §4 caveat). This module
//! closes that gap with a **measured** accuracy model:
//!
//! * For one `(network, word width)` pair, [`measure`] runs every conv
//!   layer of the network in float and in fixed point — the
//!   `examples/quantization.rs` pipeline (`fixed` quantizers,
//!   `nets::synth` seeded data, `tensor::conv` golden convolutions) —
//!   layer by layer, and pools the per-layer error statistics into one
//!   SQNR figure (the paper's §V.A error tables are per layer too).
//! * Layers are shrunk to statistical proxies (channel and spatial
//!   extents capped, kernel/stride/grouping preserved) so a measurement
//!   costs milliseconds, not the minutes a full VGG-16 inference would:
//!   SQNR is a ratio of per-element second moments, which subsampling
//!   preserves, unlike total runtime.
//! * Q-formats are chosen per layer by the paper's own range-analysis
//!   flow: [`QFormat::fit`] on the actual tensors, narrowed by
//!   `16 − word_bits` to emulate the narrower datapath, then trimmed
//!   until the 32-bit accumulator has headroom for the layer's output
//!   range (saturating accumulation models the write-back converter).
//!
//! The result depends only on `(net, word_bits)` — not on PEs, clock or
//! memory sizing — so it is memoized process-wide ([`sqnr_for`]) and
//! rides every persisted [`crate::eval::PointResult`] record
//! (`dse::persist` schema v2), which is what makes a restarted daemon
//! re-serve SQNR without recomputing anything. [`recomputations`]
//! counts actual measurements, so callers can prove cache behaviour
//! ("second identical sweep: 0 accuracy recomputations").
//!
//! **Why SQNR and not top-1 accuracy:** the repository has no trained
//! weights and no dataset (DESIGN.md §5 — the paper's MatConvNet models
//! are unavailable), so task accuracy is unmeasurable here. SQNR against
//! the float reference on range-realistic synthetic tensors is exactly
//! the metric the paper's own §V.A verification flow uses, and it is the
//! quantity the datapath width actually controls.
//!
//! # Example
//!
//! ```
//! use chain_nn_dse::accuracy;
//!
//! let wide = accuracy::sqnr_for("lenet", 16).unwrap();
//! let narrow = accuracy::sqnr_for("lenet", 8).unwrap();
//! assert!(wide > narrow + 20.0, "16-bit must buy real precision");
//! // Memoized: asking again measures nothing new.
//! assert_eq!(accuracy::sqnr_for("lenet", 16).unwrap(), wide);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use chain_nn_fixed::error::{compare, ErrorStats};
use chain_nn_fixed::{OverflowMode, QFormat};
use chain_nn_nets::synth::SynthSource;
use chain_nn_nets::{ConvLayerSpec, Network};
use chain_nn_tensor::conv::{conv2d_f32, conv2d_fix};
use chain_nn_tensor::ops;

use crate::{network_by_name, DseError};

/// Pooled float-vs-fixed error statistics of one `(net, word)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyStats {
    /// Signal-to-quantization-noise ratio in dB, pooled over every
    /// layer's output activations (per-element mean of squared signal
    /// over per-element mean of squared error).
    pub sqnr_db: f64,
    /// Pooled mean squared error.
    pub mse: f64,
    /// Largest absolute error seen on any layer output.
    pub max_abs: f64,
    /// Output elements compared across all layers.
    pub count: usize,
}

/// Seed of the synthetic data source; fixed so the measurement is a
/// pure function of `(net, word_bits)`.
const SYNTH_SEED: u64 = 42;

/// Per-group channel cap of the layer proxies.
const PROXY_CHANNELS: usize = 16;

/// Output positions per spatial dimension of the layer proxies.
const PROXY_OUT: usize = 4;

/// Shrinks `layer` to its statistical proxy: kernel, stride, padding
/// and grouping structure preserved; per-group channel counts capped at
/// [`PROXY_CHANNELS`], group count capped at 4, spatial extent capped
/// so at most [`PROXY_OUT`] output positions remain per dimension.
fn proxy_layer(layer: &ConvLayerSpec) -> ConvLayerSpec {
    let groups = layer.groups().min(4);
    let c = groups * layer.c_per_group().min(PROXY_CHANNELS);
    let m = groups * layer.m_per_group().min(PROXY_CHANNELS);
    let h = layer
        .h()
        .min(layer.k() + (PROXY_OUT - 1) * layer.stride())
        .max(layer.k().saturating_sub(2 * layer.pad()).max(1));
    ConvLayerSpec::named(
        layer.name(),
        c,
        h,
        h,
        layer.k(),
        layer.stride(),
        layer.pad(),
        m,
        groups,
    )
    .expect("proxy of a valid layer is valid")
}

/// The activation/weight Q-formats of one layer at `word_bits`:
/// range-fit at 16 bits, narrowed to the emulated width, then trimmed
/// until the layer's float output range fits the 32-bit accumulator
/// with one guard bit.
fn layer_formats(
    word_bits: u32,
    acts: &[f32],
    weights: &[f32],
    float_out_max: f32,
) -> (QFormat, QFormat) {
    let shrink = 16 - word_bits; // word widths are validated 8 | 16
    let mut fa = QFormat::fit(acts).frac_bits().saturating_sub(shrink);
    let mut fw = QFormat::fit(weights).frac_bits().saturating_sub(shrink);
    // Raw accumulated outputs are ≈ out · 2^(fa+fw); keep them below
    // 2^30 so saturation only models genuine overflow, not headroom.
    let out_bits = float_out_max.max(1.0).log2().ceil().max(0.0) as u32 + 1;
    while fa + fw > 30u32.saturating_sub(out_bits) {
        if fa >= fw && fa > 0 {
            fa -= 1;
        } else if fw > 0 {
            fw -= 1;
        } else {
            break;
        }
    }
    (
        QFormat::new(fa).expect("trimmed format valid"),
        QFormat::new(fw).expect("trimmed format valid"),
    )
}

/// Measures the float-vs-fixed quantization error of `net` at
/// `word_bits` on the layer proxies. Deterministic: same inputs, same
/// answer, bit for bit.
///
/// # Errors
///
/// Returns [`DseError::Spec`] for a word width the datapath models do
/// not support (anything but 8 or 16 bits).
pub fn measure(net: &Network, word_bits: u32) -> Result<AccuracyStats, DseError> {
    if !matches!(word_bits, 8 | 16) {
        return Err(DseError::Spec(format!(
            "word width {word_bits} unsupported (expected 8 or 16 bits)"
        )));
    }
    let mut src = SynthSource::new(SYNTH_SEED);
    let proxies: Vec<ConvLayerSpec> = net.layers().iter().map(proxy_layer).collect();

    let (mut sq_err, mut sig, mut max_abs, mut count) = (0f64, 0f64, 0f64, 0usize);
    for layer in &proxies {
        // Per-layer comparison on fresh range-realistic tensors (the
        // paper's §V.A tables are also per layer): the proxies' spatial
        // extents do not compose, so activations are drawn at each
        // layer's own input shape rather than chained through.
        let float_act = src.activations(layer, 1, 2.0);
        let weights = src.weights(layer);
        // Float reference (then ReLU, as between real conv layers).
        let fref = conv2d_f32(&float_act, &weights, None, layer.geometry())
            .map_err(|e| DseError::Spec(format!("accuracy proxy for '{}': {e}", layer.name())))?;
        let fref = ops::relu(&fref);
        let out_max = fref.as_slice().iter().fold(0f32, |m, &x| m.max(x.abs()));

        // The fixed path quantizes the SAME inputs the float path
        // consumed, so the measured error is pure quantization noise —
        // like hardware with a requantizing write-back between layers.
        let (act_fmt, w_fmt) =
            layer_formats(word_bits, float_act.as_slice(), weights.as_slice(), out_max);
        let qa = float_act.map(|x| act_fmt.quantize(x));
        let qw = weights.map(|x| w_fmt.quantize(x));
        let raw = conv2d_fix(&qa, &qw, layer.geometry(), OverflowMode::Saturating)
            .map_err(|e| DseError::Spec(format!("accuracy proxy for '{}': {e}", layer.name())))?;
        let scale = 2f64.powi(-((act_fmt.frac_bits() + w_fmt.frac_bits()) as i32)) as f32;
        let ffix = raw.map(|v| (v as f32 * scale).max(0.0));

        let stats = compare(fref.as_slice(), ffix.as_slice());
        sq_err += stats.mse * stats.count as f64;
        sig += stats.signal_power * stats.count as f64;
        max_abs = max_abs.max(stats.max_abs);
        count += stats.count;
    }
    let pooled = ErrorStats {
        mse: sq_err / count as f64,
        max_abs,
        signal_power: sig / count as f64,
        count,
    };
    Ok(AccuracyStats {
        sqnr_db: pooled.sqnr_db(),
        mse: pooled.mse,
        max_abs: pooled.max_abs,
        count: pooled.count,
    })
}

type Memo = Mutex<HashMap<(String, u32), f64>>;

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(Memo::default)
}

fn recompute_counter() -> &'static AtomicU64 {
    static COUNT: AtomicU64 = AtomicU64::new(0);
    &COUNT
}

/// How many actual [`measure`] runs this process has performed — the
/// number that proves memoization ("second identical sweep: 0 accuracy
/// recomputations"). Monotonic over the process lifetime; take deltas.
pub fn recomputations() -> u64 {
    recompute_counter().load(Ordering::Relaxed)
}

/// The memoized SQNR of `(net, word_bits)` in dB: measured once per
/// process per pair (under a lock, so racing callers never measure the
/// same pair twice), answered from the memo afterwards. The persistence
/// layer pre-seeds the memo from loaded records ([`seed`]), so a daemon
/// restarted on a cache file does not re-measure what its snapshot
/// already knows.
///
/// # Errors
///
/// [`DseError::Spec`] for an unknown network or unsupported word width.
pub fn sqnr_for(net: &str, word_bits: u32) -> Result<f64, DseError> {
    let key = (net.to_ascii_lowercase(), word_bits);
    let mut memo = memo().lock().expect("accuracy memo poisoned");
    if let Some(&sqnr) = memo.get(&key) {
        return Ok(sqnr);
    }
    let network =
        network_by_name(net).ok_or_else(|| DseError::Spec(format!("unknown network '{net}'")))?;
    let stats = measure(&network, word_bits)?;
    recompute_counter().fetch_add(1, Ordering::Relaxed);
    memo.insert(key, stats.sqnr_db);
    Ok(stats.sqnr_db)
}

/// Pre-seeds the process-wide memo with a known measurement (a value
/// loaded from a persisted record). A no-op when the pair is already
/// memoized; never overwrites, so a measured value always wins over a
/// loaded one on ties (they are bit-identical anyway — the measurement
/// is deterministic).
pub fn seed(net: &str, word_bits: u32, sqnr_db: f64) {
    if !sqnr_db.is_finite() {
        return;
    }
    let key = (net.to_ascii_lowercase(), word_bits);
    memo()
        .lock()
        .expect("accuracy memo poisoned")
        .entry(key)
        .or_insert(sqnr_db);
}

/// Test-only: forces every `(net, width)` pair that tests in this
/// crate's binary can reach through [`sqnr_for`] into the memo, so a
/// test can then read [`recomputations`] without racing concurrent
/// tests mid-measurement (measurements complete — and count — under
/// the memo lock before this returns).
#[cfg(test)]
pub(crate) fn warm_counter_visible_pairs() {
    for net in ["lenet", "cifar10", "alexnet", "vgg16"] {
        for bits in [8u32, 16] {
            sqnr_for(net, bits).expect("zoo pair measures");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_words_measure_higher_sqnr_on_every_zoo_net() {
        for net in ["lenet", "cifar10", "alexnet"] {
            let network = network_by_name(net).unwrap();
            let narrow = measure(&network, 8).unwrap();
            let wide = measure(&network, 16).unwrap();
            assert!(
                wide.sqnr_db > narrow.sqnr_db + 20.0,
                "{net}: 16-bit {:.1} dB vs 8-bit {:.1} dB",
                wide.sqnr_db,
                narrow.sqnr_db
            );
            assert!(narrow.sqnr_db > 10.0, "{net}: 8-bit unusable");
            assert!(wide.sqnr_db.is_finite());
            assert!(narrow.max_abs > wide.max_abs);
            assert!(narrow.count == wide.count && narrow.count > 0);
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let net = network_by_name("cifar10").unwrap();
        let a = measure(&net, 8).unwrap();
        let b = measure(&net, 8).unwrap();
        assert_eq!(a.sqnr_db.to_bits(), b.sqnr_db.to_bits());
        assert_eq!(a.mse.to_bits(), b.mse.to_bits());
    }

    #[test]
    fn memo_measures_once_and_seed_preempts() {
        // The probe pairs (resnet18/mobilenet) are touched by no other
        // test; every pair that IS reachable elsewhere gets settled
        // first, so the global counter cannot move under our feet.
        warm_counter_visible_pairs();
        let before = recomputations();
        let first = sqnr_for("resnet18", 8).unwrap();
        let mid = recomputations();
        assert_eq!(mid, before + 1);
        let again = sqnr_for("resnet18", 8).unwrap();
        assert_eq!(again.to_bits(), first.to_bits());
        assert_eq!(recomputations(), mid, "memo hit must not re-measure");

        // A seeded pair is served without measuring.
        seed("mobilenet", 8, 33.25);
        let served = sqnr_for("mobilenet", 8).unwrap();
        assert_eq!(served, 33.25);
        assert_eq!(recomputations(), mid);
        // Seeding never overwrites.
        seed("mobilenet", 8, 1.0);
        assert_eq!(sqnr_for("mobilenet", 8).unwrap(), 33.25);
    }

    #[test]
    fn unknown_net_and_bad_width_are_errors() {
        assert!(sqnr_for("squeezenet", 16).is_err());
        let net = network_by_name("lenet").unwrap();
        assert!(measure(&net, 12).is_err());
    }

    #[test]
    fn proxies_preserve_structure_and_shrink_extent() {
        let conv1 = ConvLayerSpec::named("conv1", 3, 227, 227, 11, 4, 0, 96, 1).unwrap();
        let p = proxy_layer(&conv1);
        assert_eq!(p.k(), 11);
        assert_eq!(p.stride(), 4);
        assert_eq!(p.c(), 3, "small channel counts pass through");
        assert_eq!(p.m(), PROXY_CHANNELS);
        assert!(p.h() < conv1.h());
        assert!(p.out_h() >= 1 && p.out_h() <= PROXY_OUT + 1);
        // Grouped layers keep their grouping structure.
        let conv2 = ConvLayerSpec::named("conv2", 96, 27, 27, 5, 1, 2, 256, 2).unwrap();
        let p = proxy_layer(&conv2);
        assert_eq!(p.groups(), 2);
        assert_eq!(p.c_per_group(), PROXY_CHANNELS);
        // Depthwise layers stay depthwise (1 channel per group).
        let dw = ConvLayerSpec::named("dw", 256, 14, 14, 3, 1, 1, 256, 256).unwrap();
        let p = proxy_layer(&dw);
        assert_eq!(p.c_per_group(), 1);
        assert_eq!(p.groups(), 4);
    }

    #[test]
    fn formats_leave_accumulator_headroom() {
        let acts = [1.9f32, 0.5, 0.25];
        let weights = [0.3f32, -0.2];
        for word in [8u32, 16] {
            let (fa, fw) = layer_formats(word, &acts, &weights, 40.0);
            let out_bits = 40f32.log2().ceil() as u32 + 1;
            assert!(fa.frac_bits() + fw.frac_bits() <= 30 - out_bits);
            // Every act/weight value still quantizes without saturating.
            for &a in &acts {
                assert!(fa.max_value() >= a);
            }
        }
    }
}
