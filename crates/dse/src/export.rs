//! CSV / JSON exports of sweep results, following the conventions of
//! `chain-nn-bench`'s `csv` module: a single header line, comma rows,
//! no quoting (field values never contain commas), fixed float
//! precision so identical sweeps serialize byte-identically.

use std::fmt::Write as _;

use crate::{DesignPoint, MixResult, SweepResult};

/// CSV header of [`results_csv`].
pub const RESULTS_HEADER: &str = "net,pes,freq_mhz,kmem_depth,imem_kb,omem_kb,word_bits,batch,\
     status,fps,achieved_gops,peak_gops,chip_mw,dram_mw,system_mw,gops_per_watt,gates_k,sram_kb,\
     sqnr_db,frontier_2d,frontier_3d,frontier_sqnr";

fn push_row(s: &mut String, result: &SweepResult, i: usize) {
    let p = &result.points[i];
    let _ = write!(
        s,
        "{},{},{},{},{},{},{},{}",
        p.net, p.pes, p.freq_mhz, p.kmem_depth, p.imem_kb, p.omem_kb, p.word_bits, p.batch
    );
    match result.outcomes[i].result() {
        Some(r) => {
            let _ = writeln!(
                s,
                ",ok,{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.1},{:.1},{:.2},{},{},{}",
                r.fps,
                r.achieved_gops,
                r.peak_gops,
                r.chip_mw,
                r.dram_mw,
                r.system_mw(),
                r.gops_per_watt(),
                r.gates_k,
                r.sram_kb,
                r.sqnr_db,
                u8::from(result.frontier_2d.contains(&i)),
                u8::from(result.frontier_3d.contains(&i)),
                u8::from(result.frontier_sqnr.contains(&i)),
            );
        }
        None => {
            let _ = writeln!(s, ",infeasible,,,,,,,,,,,0,0,0");
        }
    }
}

/// The full sweep as CSV, one row per point, in point order.
///
/// # Example
///
/// ```
/// use chain_nn_dse::{export, Explorer, SweepSpec};
///
/// let spec = SweepSpec {
///     pes: vec![25, 50],
///     nets: vec!["lenet".into()],
///     ..SweepSpec::paper_point()
/// };
/// let result = Explorer::new().run(&spec, 1).unwrap();
/// let csv = export::results_csv(&result);
/// assert!(csv.starts_with(export::RESULTS_HEADER));
/// assert_eq!(csv.lines().count(), 3); // header + 2 points
/// assert!(csv.contains(",ok,"));
/// ```
pub fn results_csv(result: &SweepResult) -> String {
    let mut s = String::from(RESULTS_HEADER);
    s.push('\n');
    for i in 0..result.points.len() {
        push_row(&mut s, result, i);
    }
    s
}

/// Only the 3D Pareto frontier as CSV (same schema as [`results_csv`]).
pub fn frontier_csv(result: &SweepResult) -> String {
    let mut s = String::from(RESULTS_HEADER);
    s.push('\n');
    for &i in &result.frontier_3d {
        push_row(&mut s, result, i);
    }
    s
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The full sweep as a JSON document: `{"points": [...], "frontier_2d":
/// [...], "frontier_3d": [...], "stats": {...}}`. Hand-rolled writer —
/// the repo carries no serde dependency.
pub fn results_json(result: &SweepResult) -> String {
    let mut s = String::from("{\n  \"points\": [\n");
    for (i, p) in result.points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"net\": \"{}\", \"pes\": {}, \"freq_mhz\": {}, \"kmem_depth\": {}, \
             \"imem_kb\": {}, \"omem_kb\": {}, \"word_bits\": {}, \"batch\": {}",
            json_escape(&p.net),
            p.pes,
            p.freq_mhz,
            p.kmem_depth,
            p.imem_kb,
            p.omem_kb,
            p.word_bits,
            p.batch
        );
        match result.outcomes[i].result() {
            Some(r) => {
                let _ = write!(
                    s,
                    ", \"status\": \"ok\", \"fps\": {:.3}, \"achieved_gops\": {:.3}, \
                     \"peak_gops\": {:.3}, \"chip_mw\": {:.3}, \"dram_mw\": {:.3}, \
                     \"system_mw\": {:.3}, \"gops_per_watt\": {:.3}, \"gates_k\": {:.1}, \
                     \"sram_kb\": {:.1}, \"sqnr_db\": {:.2}",
                    r.fps,
                    r.achieved_gops,
                    r.peak_gops,
                    r.chip_mw,
                    r.dram_mw,
                    r.system_mw(),
                    r.gops_per_watt(),
                    r.gates_k,
                    r.sram_kb,
                    r.sqnr_db
                );
            }
            None => {
                let _ = write!(s, ", \"status\": \"infeasible\"");
            }
        }
        let _ = writeln!(
            s,
            "}}{}",
            if i + 1 < result.points.len() { "," } else { "" }
        );
    }
    let list = |ix: &[usize]| {
        ix.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"frontier_2d\": [{}],", list(&result.frontier_2d));
    let _ = writeln!(s, "  \"frontier_3d\": [{}],", list(&result.frontier_3d));
    let _ = writeln!(s, "  \"frontier_sqnr\": [{}],", list(&result.frontier_sqnr));
    let _ = writeln!(
        s,
        "  \"stats\": {{\"points\": {}, \"feasible\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"threads\": {}}}",
        result.stats.points,
        result.stats.feasible,
        result.stats.cache_hits,
        result.stats.cache_misses,
        result.stats.threads
    );
    s.push('}');
    s.push('\n');
    s
}

/// One row of a tuned-frontier export: the constrained optimum at one
/// budget step, with its mix-aggregated metrics. Produced by the
/// tuner's budget-axis sweep (`chain-nn tune --sweep-budget`); the
/// schema lives here next to the sweep exports so every CSV/JSON the
/// toolkit writes shares one module.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedFrontierRow {
    /// The swept budget axis' value at this step.
    pub budget_value: f64,
    /// The chosen configuration.
    pub point: DesignPoint,
    /// Its aggregated workload metrics.
    pub result: MixResult,
    /// Whether the configuration satisfies the step's budget.
    pub admitted: bool,
    /// Whether the step is on the deduplicated, Pareto-filtered tuned
    /// frontier.
    pub on_frontier: bool,
}

/// CSV header of [`tuned_frontier_csv`].
pub const TUNED_FRONTIER_HEADER: &str = "budget_axis,budget_value,admitted,on_frontier,\
     net,pes,freq_mhz,kmem_depth,imem_kb,omem_kb,word_bits,batch,\
     fps,chip_mw,dram_mw,system_mw,peak_gops,gops_per_watt,gates_k,sram_kb,sqnr_db";

/// A tuned frontier as CSV: one row per budget step, in sweep order.
/// `axis` is the swept axis' wire name (e.g. `max_system_mw`). Fixed
/// float precision, no quoting — identical sweeps serialize
/// byte-identically, like [`results_csv`].
pub fn tuned_frontier_csv(axis: &str, rows: &[TunedFrontierRow]) -> String {
    let mut s = String::from(TUNED_FRONTIER_HEADER);
    s.push('\n');
    for row in rows {
        let p = &row.point;
        let r = &row.result;
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.1},{:.1},{:.2}",
            axis,
            row.budget_value,
            u8::from(row.admitted),
            u8::from(row.on_frontier),
            p.net,
            p.pes,
            p.freq_mhz,
            p.kmem_depth,
            p.imem_kb,
            p.omem_kb,
            p.word_bits,
            p.batch,
            r.fps,
            r.chip_mw,
            r.dram_mw,
            r.system_mw(),
            r.peak_gops,
            r.gops_per_watt(),
            r.gates_k,
            r.sram_kb,
            r.sqnr_db,
        );
    }
    s
}

/// A tuned frontier as a JSON document: `{"budget_axis": ...,
/// "steps": [...]}` with one object per budget step. Hand-rolled like
/// [`results_json`] — the repo carries no serde dependency.
pub fn tuned_frontier_json(axis: &str, rows: &[TunedFrontierRow]) -> String {
    let mut s = format!(
        "{{\n  \"budget_axis\": \"{}\",\n  \"steps\": [\n",
        json_escape(axis)
    );
    for (i, row) in rows.iter().enumerate() {
        let p = &row.point;
        let r = &row.result;
        let _ = write!(
            s,
            "    {{\"budget_value\": {}, \"admitted\": {}, \"on_frontier\": {}, \
             \"net\": \"{}\", \"pes\": {}, \"freq_mhz\": {}, \"kmem_depth\": {}, \
             \"imem_kb\": {}, \"omem_kb\": {}, \"word_bits\": {}, \"batch\": {}, \
             \"fps\": {:.3}, \"chip_mw\": {:.3}, \"dram_mw\": {:.3}, \"system_mw\": {:.3}, \
             \"peak_gops\": {:.3}, \"gops_per_watt\": {:.3}, \"gates_k\": {:.1}, \
             \"sram_kb\": {:.1}, \"sqnr_db\": {:.2}}}",
            row.budget_value,
            row.admitted,
            row.on_frontier,
            json_escape(&p.net),
            p.pes,
            p.freq_mhz,
            p.kmem_depth,
            p.imem_kb,
            p.omem_kb,
            p.word_bits,
            p.batch,
            r.fps,
            r.chip_mw,
            r.dram_mw,
            r.system_mw(),
            r.peak_gops,
            r.gops_per_watt(),
            r.gates_k,
            r.sram_kb,
            r.sqnr_db,
        );
        let _ = writeln!(s, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Explorer, SweepSpec};

    fn tiny_result() -> SweepResult {
        let spec = SweepSpec {
            pes: vec![25, 50, 100],
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        };
        Explorer::new().run(&spec, 2).unwrap()
    }

    #[test]
    fn csv_is_rectangular_and_headed() {
        let result = tiny_result();
        for csv in [results_csv(&result), frontier_csv(&result)] {
            let rows: Vec<Vec<&str>> = csv.lines().map(|l| l.split(',').collect()).collect();
            assert!(rows.len() >= 2, "no data rows");
            let width = rows[0].len();
            assert_eq!(rows[0][0], "net");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.len(), width, "ragged row {i}");
            }
        }
    }

    #[test]
    fn csv_row_count_matches_points() {
        let result = tiny_result();
        let csv = results_csv(&result);
        assert_eq!(csv.lines().count(), result.points.len() + 1);
        let frontier = frontier_csv(&result);
        assert_eq!(frontier.lines().count(), result.frontier_3d.len() + 1);
    }

    #[test]
    fn json_has_every_section_and_balanced_braces() {
        let result = tiny_result();
        let json = results_json(&result);
        for key in [
            "\"points\"",
            "\"frontier_2d\"",
            "\"frontier_3d\"",
            "\"frontier_sqnr\"",
            "\"sqnr_db\"",
            "\"stats\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches("\"status\"").count(), result.points.len());
    }

    #[test]
    fn json_escapes_control_and_quote() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    fn tuned_rows() -> Vec<TunedFrontierRow> {
        let result = MixResult {
            fps: 163.1,
            chip_mw: 430.0,
            dram_mw: 64.5,
            peak_gops: 560.0,
            gates_k: 2921.0,
            sram_kb: 57.0,
            sqnr_db: 72.5,
        };
        vec![
            TunedFrontierRow {
                budget_value: 500.0,
                point: DesignPoint::paper_alexnet(),
                result,
                admitted: true,
                on_frontier: true,
            },
            TunedFrontierRow {
                budget_value: 550.0,
                point: DesignPoint::paper_alexnet(),
                result,
                admitted: true,
                on_frontier: false,
            },
        ]
    }

    #[test]
    fn tuned_frontier_csv_is_rectangular_and_headed() {
        let csv = tuned_frontier_csv("max_system_mw", &tuned_rows());
        let rows: Vec<Vec<&str>> = csv.lines().map(|l| l.split(',').collect()).collect();
        assert_eq!(rows.len(), 3); // header + 2 steps
        let width = rows[0].len();
        assert_eq!(rows[0][0], "budget_axis");
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), width, "ragged row {i}");
        }
        assert!(csv.contains("max_system_mw,500,1,1,alexnet,576,"), "{csv}");
        assert!(csv.contains("max_system_mw,550,1,0,"), "{csv}");
    }

    #[test]
    fn tuned_frontier_json_is_balanced_and_complete() {
        let json = tuned_frontier_json("max_system_mw", &tuned_rows());
        for key in [
            "\"budget_axis\"",
            "\"steps\"",
            "\"budget_value\"",
            "\"on_frontier\"",
            "\"sqnr_db\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches("\"budget_value\"").count(), 2);
    }
}
