//! CSV / JSON exports of sweep results, following the conventions of
//! `chain-nn-bench`'s `csv` module: a single header line, comma rows,
//! no quoting (field values never contain commas), fixed float
//! precision so identical sweeps serialize byte-identically.

use std::fmt::Write as _;

use crate::SweepResult;

/// CSV header of [`results_csv`].
pub const RESULTS_HEADER: &str = "net,pes,freq_mhz,kmem_depth,imem_kb,omem_kb,word_bits,batch,\
     status,fps,achieved_gops,peak_gops,chip_mw,dram_mw,system_mw,gops_per_watt,gates_k,sram_kb,\
     sqnr_db,frontier_2d,frontier_3d,frontier_sqnr";

fn push_row(s: &mut String, result: &SweepResult, i: usize) {
    let p = &result.points[i];
    let _ = write!(
        s,
        "{},{},{},{},{},{},{},{}",
        p.net, p.pes, p.freq_mhz, p.kmem_depth, p.imem_kb, p.omem_kb, p.word_bits, p.batch
    );
    match result.outcomes[i].result() {
        Some(r) => {
            let _ = writeln!(
                s,
                ",ok,{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.1},{:.1},{:.2},{},{},{}",
                r.fps,
                r.achieved_gops,
                r.peak_gops,
                r.chip_mw,
                r.dram_mw,
                r.system_mw(),
                r.gops_per_watt(),
                r.gates_k,
                r.sram_kb,
                r.sqnr_db,
                u8::from(result.frontier_2d.contains(&i)),
                u8::from(result.frontier_3d.contains(&i)),
                u8::from(result.frontier_sqnr.contains(&i)),
            );
        }
        None => {
            let _ = writeln!(s, ",infeasible,,,,,,,,,,,0,0,0");
        }
    }
}

/// The full sweep as CSV, one row per point, in point order.
///
/// # Example
///
/// ```
/// use chain_nn_dse::{export, Explorer, SweepSpec};
///
/// let spec = SweepSpec {
///     pes: vec![25, 50],
///     nets: vec!["lenet".into()],
///     ..SweepSpec::paper_point()
/// };
/// let result = Explorer::new().run(&spec, 1).unwrap();
/// let csv = export::results_csv(&result);
/// assert!(csv.starts_with(export::RESULTS_HEADER));
/// assert_eq!(csv.lines().count(), 3); // header + 2 points
/// assert!(csv.contains(",ok,"));
/// ```
pub fn results_csv(result: &SweepResult) -> String {
    let mut s = String::from(RESULTS_HEADER);
    s.push('\n');
    for i in 0..result.points.len() {
        push_row(&mut s, result, i);
    }
    s
}

/// Only the 3D Pareto frontier as CSV (same schema as [`results_csv`]).
pub fn frontier_csv(result: &SweepResult) -> String {
    let mut s = String::from(RESULTS_HEADER);
    s.push('\n');
    for &i in &result.frontier_3d {
        push_row(&mut s, result, i);
    }
    s
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The full sweep as a JSON document: `{"points": [...], "frontier_2d":
/// [...], "frontier_3d": [...], "stats": {...}}`. Hand-rolled writer —
/// the repo carries no serde dependency.
pub fn results_json(result: &SweepResult) -> String {
    let mut s = String::from("{\n  \"points\": [\n");
    for (i, p) in result.points.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"net\": \"{}\", \"pes\": {}, \"freq_mhz\": {}, \"kmem_depth\": {}, \
             \"imem_kb\": {}, \"omem_kb\": {}, \"word_bits\": {}, \"batch\": {}",
            json_escape(&p.net),
            p.pes,
            p.freq_mhz,
            p.kmem_depth,
            p.imem_kb,
            p.omem_kb,
            p.word_bits,
            p.batch
        );
        match result.outcomes[i].result() {
            Some(r) => {
                let _ = write!(
                    s,
                    ", \"status\": \"ok\", \"fps\": {:.3}, \"achieved_gops\": {:.3}, \
                     \"peak_gops\": {:.3}, \"chip_mw\": {:.3}, \"dram_mw\": {:.3}, \
                     \"system_mw\": {:.3}, \"gops_per_watt\": {:.3}, \"gates_k\": {:.1}, \
                     \"sram_kb\": {:.1}, \"sqnr_db\": {:.2}",
                    r.fps,
                    r.achieved_gops,
                    r.peak_gops,
                    r.chip_mw,
                    r.dram_mw,
                    r.system_mw(),
                    r.gops_per_watt(),
                    r.gates_k,
                    r.sram_kb,
                    r.sqnr_db
                );
            }
            None => {
                let _ = write!(s, ", \"status\": \"infeasible\"");
            }
        }
        let _ = writeln!(
            s,
            "}}{}",
            if i + 1 < result.points.len() { "," } else { "" }
        );
    }
    let list = |ix: &[usize]| {
        ix.iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"frontier_2d\": [{}],", list(&result.frontier_2d));
    let _ = writeln!(s, "  \"frontier_3d\": [{}],", list(&result.frontier_3d));
    let _ = writeln!(s, "  \"frontier_sqnr\": [{}],", list(&result.frontier_sqnr));
    let _ = writeln!(
        s,
        "  \"stats\": {{\"points\": {}, \"feasible\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"threads\": {}}}",
        result.stats.points,
        result.stats.feasible,
        result.stats.cache_hits,
        result.stats.cache_misses,
        result.stats.threads
    );
    s.push('}');
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Explorer, SweepSpec};

    fn tiny_result() -> SweepResult {
        let spec = SweepSpec {
            pes: vec![25, 50, 100],
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        };
        Explorer::new().run(&spec, 2).unwrap()
    }

    #[test]
    fn csv_is_rectangular_and_headed() {
        let result = tiny_result();
        for csv in [results_csv(&result), frontier_csv(&result)] {
            let rows: Vec<Vec<&str>> = csv.lines().map(|l| l.split(',').collect()).collect();
            assert!(rows.len() >= 2, "no data rows");
            let width = rows[0].len();
            assert_eq!(rows[0][0], "net");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.len(), width, "ragged row {i}");
            }
        }
    }

    #[test]
    fn csv_row_count_matches_points() {
        let result = tiny_result();
        let csv = results_csv(&result);
        assert_eq!(csv.lines().count(), result.points.len() + 1);
        let frontier = frontier_csv(&result);
        assert_eq!(frontier.lines().count(), result.frontier_3d.len() + 1);
    }

    #[test]
    fn json_has_every_section_and_balanced_braces() {
        let result = tiny_result();
        let json = results_json(&result);
        for key in [
            "\"points\"",
            "\"frontier_2d\"",
            "\"frontier_3d\"",
            "\"frontier_sqnr\"",
            "\"sqnr_db\"",
            "\"stats\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches("\"status\"").count(), result.points.len());
    }

    #[test]
    fn json_escapes_control_and_quote() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
