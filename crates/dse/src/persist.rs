//! Append-only on-disk snapshot of a [`PointCache`].
//!
//! The `chain-nn serve` daemon (and anything else that wants sweeps to
//! be incremental *across* processes) persists every fresh evaluation
//! as one self-checking record in a cache file and replays the file at
//! startup. Design constraints, in order:
//!
//! * **Append-only.** A flush never rewrites history — it appends the
//!   cache's dirty journal ([`PointCache::take_dirty`]) and syncs. A
//!   crash can only lose the unflushed tail, never corrupt old records.
//! * **Self-checking.** Each record carries its payload length and an
//!   FNV-1a checksum; the payload carries the point's content hash,
//!   which the loader recomputes from the decoded point. A flipped bit
//!   fails the checksum; a decoder mismatch fails the hash cross-check.
//! * **Corruption-tolerant load.** The loader keeps every record up to
//!   the first framing/checksum failure and truncates the rest away
//!   (the framing has no resync marker, so bytes after a bad record
//!   cannot be trusted, and leaving them would strand later appends
//!   behind an unreadable tail). A truncated tail — the expected
//!   result of a crash mid-append — therefore costs only the torn
//!   record.
//! * **Compactable.** Append-only means superseded records accrete —
//!   a bounded cache ([`PointCache::bounded`]) that evicts a flushed
//!   point and later re-evaluates it appends a second record for the
//!   same point. [`CacheFile::compact`] rewrites the snapshot keeping
//!   only each point's first record (the one load semantics honor);
//!   [`CacheFile::load_into`] runs it automatically when more than
//!   half the records on disk are dead.
//!
//! The format is deliberately dependency-free binary, little-endian
//! throughout, versioned by the magic line:
//!
//! ```text
//! file   := magic record*
//! magic  := b"chain-nn dse cache v2\n"
//! record := len:u32 checksum:u64 payload[len]   (checksum = FNV-1a of payload)
//! payload:= hash:u64 point outcome
//! point  := pes:u64 freq_bits:u64 kmem:u64 imem:u64 omem:u64
//!           word_bits:u32 batch:u64 net_len:u32 net[net_len]
//! outcome:= 0:u8 reason_len:u32 reason[reason_len]              (infeasible)
//!         | 1:u8 fps achieved peak chip dram gates sram sqnr    (feasible, f64 bits each)
//! ```
//!
//! **Version history.** v1 files (magic `chain-nn dse cache v1`) are
//! identical except that feasible outcomes carry seven f64 fields — no
//! `sqnr`. The loader still reads them: v1 feasible records are
//! upgraded in place by recomputing the (deterministic) accuracy
//! measurement for the record's `(net, word_bits)` pair, and a v1 file
//! is rewritten as v2 on first load (via [`CacheFile::compact`], which
//! always writes the current version), so appends never mix versions.
//! The same corruption tolerance applies to both versions.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::path::{Path, PathBuf};

use crate::eval::{PointOutcome, PointResult};
use crate::spec::DesignPoint;
use crate::PointCache;

/// Version-bearing first bytes of every cache file (current version).
pub const MAGIC: &[u8] = b"chain-nn dse cache v2\n";

/// The previous format's magic line: feasible records carry no SQNR
/// field. Still readable; rewritten as v2 on first load.
pub const MAGIC_V1: &[u8] = b"chain-nn dse cache v1\n";

/// On-disk format versions this loader understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    V1,
    V2,
}

/// Identifies the snapshot version from the file's first bytes.
fn detect_version(bytes: &[u8]) -> Option<Version> {
    if bytes.len() < MAGIC.len() {
        return None;
    }
    match &bytes[..MAGIC.len()] {
        m if m == MAGIC => Some(Version::V2),
        m if m == MAGIC_V1 => Some(Version::V1),
        _ => None,
    }
}

/// Hard upper bound on one record's payload (a point plus an error
/// string); anything larger is framing corruption, not data.
const MAX_PAYLOAD: u32 = 1 << 16;

/// What a [`CacheFile::load_into`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Records decoded, verified and inserted.
    pub loaded: usize,
    /// Valid records that repeated an earlier point (first wins; the
    /// repeat is dead weight on disk).
    pub duplicates: usize,
    /// Records whose checksum passed but whose content hash did not
    /// match the decoded point (skipped individually).
    pub rejected: usize,
    /// Bytes abandoned after the first framing/checksum failure (0 for
    /// a clean file).
    pub corrupt_tail_bytes: u64,
    /// Whether the loader compacted the file because dead records
    /// (duplicates + rejected) exceeded half of it.
    pub compacted: bool,
}

impl LoadReport {
    /// Records that occupy disk without contributing cache state.
    pub fn dead(&self) -> usize {
        self.duplicates + self.rejected
    }
}

/// What a [`CacheFile::compact`] rewrite dropped and kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Live records written back (first occurrence of each point).
    pub kept: usize,
    /// Later records repeating an already-kept point.
    pub dropped_duplicates: usize,
    /// Records failing the decode or content-hash cross-check.
    pub dropped_rejected: usize,
    /// Unreadable tail bytes discarded (framing/checksum failure).
    pub dropped_tail_bytes: u64,
}

/// Handle to one on-disk cache snapshot (the file may not exist yet).
///
/// # Example
///
/// ```
/// use chain_nn_dse::{CacheFile, DesignPoint, PointCache, PointOutcome};
///
/// let path = std::env::temp_dir().join(format!("dse_doc_{}.cache", std::process::id()));
/// # let _ = std::fs::remove_file(&path);
/// let file = CacheFile::new(&path);
/// let cache = PointCache::new();
/// cache.insert(
///     &DesignPoint::paper_alexnet(),
///     PointOutcome::Infeasible("demo".into()),
/// );
/// assert_eq!(file.flush_dirty(&cache).unwrap(), 1);
/// // A fresh process (here: a fresh cache) replays the snapshot.
/// let reloaded = PointCache::new();
/// assert_eq!(file.load_into(&reloaded).unwrap().loaded, 1);
/// assert!(reloaded.get(&DesignPoint::paper_alexnet()).is_some());
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct CacheFile {
    path: PathBuf,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn encode_payload(point: &DesignPoint, outcome: &PointOutcome) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(&point.content_hash().to_le_bytes());
    out.extend_from_slice(&(point.pes as u64).to_le_bytes());
    out.extend_from_slice(&point.freq_mhz.to_bits().to_le_bytes());
    out.extend_from_slice(&(point.kmem_depth as u64).to_le_bytes());
    out.extend_from_slice(&(point.imem_kb as u64).to_le_bytes());
    out.extend_from_slice(&(point.omem_kb as u64).to_le_bytes());
    out.extend_from_slice(&point.word_bits.to_le_bytes());
    out.extend_from_slice(&(point.batch as u64).to_le_bytes());
    out.extend_from_slice(&(point.net.len() as u32).to_le_bytes());
    out.extend_from_slice(point.net.as_bytes());
    match outcome {
        PointOutcome::Infeasible(reason) => {
            out.push(0);
            out.extend_from_slice(&(reason.len() as u32).to_le_bytes());
            out.extend_from_slice(reason.as_bytes());
        }
        PointOutcome::Feasible(r) => {
            out.push(1);
            for v in [
                r.fps,
                r.achieved_gops,
                r.peak_gops,
                r.chip_mw,
                r.dram_mw,
                r.gates_k,
                r.sram_kb,
                r.sqnr_db,
            ] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    out
}

/// Cursor-style reader over one payload; every method fails `None` on
/// underrun, which the loader treats as a rejected record.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn decode_payload(payload: &[u8], version: Version) -> Option<(DesignPoint, PointOutcome)> {
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let stored_hash = c.u64()?;
    let point = DesignPoint {
        pes: c.u64()? as usize,
        freq_mhz: f64::from_bits(c.u64()?),
        kmem_depth: c.u64()? as usize,
        imem_kb: c.u64()? as usize,
        omem_kb: c.u64()? as usize,
        word_bits: c.u32()?,
        batch: c.u64()? as usize,
        net: c.string()?,
    };
    let outcome = match c.take(1)?[0] {
        0 => PointOutcome::Infeasible(c.string()?),
        1 => {
            let mut result = PointResult {
                fps: c.f64()?,
                achieved_gops: c.f64()?,
                peak_gops: c.f64()?,
                chip_mw: c.f64()?,
                dram_mw: c.f64()?,
                gates_k: c.f64()?,
                sram_kb: c.f64()?,
                sqnr_db: f64::NAN,
            };
            match version {
                // v1 records predate the accuracy model; the
                // measurement is deterministic, so recomputing it
                // upgrades the record losslessly. An unmeasurable
                // record (a net this build no longer knows) is
                // rejected like any other undecodable payload.
                Version::V1 => {
                    result.sqnr_db = crate::accuracy::sqnr_for(&point.net, point.word_bits).ok()?;
                }
                Version::V2 => result.sqnr_db = c.f64()?,
            }
            PointOutcome::Feasible(result)
        }
        _ => return None,
    };
    if !c.done() || point.content_hash() != stored_hash {
        return None;
    }
    Some((point, outcome))
}

impl CacheFile {
    /// A handle to `path`. Nothing is touched until the first
    /// [`CacheFile::load_into`] / [`CacheFile::append`].
    pub fn new(path: impl AsRef<Path>) -> Self {
        CacheFile {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The file this handle points at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replays the snapshot into `cache` via
    /// [`PointCache::insert_loaded`] (loaded entries are not
    /// re-journaled, so a later flush appends only genuinely new work).
    ///
    /// A missing file is an empty snapshot, not an error. Damage is
    /// tolerated per the module contract and reported in the
    /// [`LoadReport`].
    ///
    /// # Errors
    ///
    /// I/O failures other than "not found", and a present file whose
    /// magic line does not match [`MAGIC`] (that is *someone else's
    /// file*; refusing protects it from our appends).
    pub fn load_into(&self, cache: &PointCache) -> std::io::Result<LoadReport> {
        let file = match File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(LoadReport::default()),
            Err(e) => return Err(e),
        };
        let mut reader = BufReader::new(file);
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            return Ok(LoadReport::default());
        }
        let Some(version) = detect_version(&bytes) else {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("{} is not a chain-nn dse cache file", self.path.display()),
            ));
        };
        let mut report = LoadReport::default();
        let mut at = MAGIC.len();
        while at < bytes.len() {
            let Some(frame) = read_frame(&bytes, at) else {
                report.corrupt_tail_bytes = (bytes.len() - at) as u64;
                break;
            };
            let (payload, next) = frame;
            match decode_payload(payload, version) {
                Some((point, outcome)) => {
                    // Pre-seed the process-wide accuracy memo: a daemon
                    // restarted on this file must not re-measure pairs
                    // its snapshot already knows.
                    if let PointOutcome::Feasible(r) = &outcome {
                        crate::accuracy::seed(&point.net, point.word_bits, r.sqnr_db);
                    }
                    if cache.insert_loaded(&point, outcome) {
                        report.loaded += 1;
                    } else {
                        report.duplicates += 1;
                    }
                }
                None => report.rejected += 1,
            }
            at = next;
        }
        if report.corrupt_tail_bytes > 0 {
            // WAL-style recovery: drop the unreadable tail so the next
            // append extends the valid prefix instead of writing records
            // beyond bytes no loader will ever cross.
            OpenOptions::new()
                .write(true)
                .open(&self.path)?
                .set_len(at as u64)?;
        }
        // Append-only files accrete dead weight (duplicates from
        // evict-then-reevaluate cycles, hash-rejected records). Once
        // the majority of the file is dead, rewrite it in place — the
        // loader already owns the file at this point in a daemon's
        // life, and the cache contents are unaffected. A v1 file is
        // always rewritten (compact emits the current version), so a
        // later append never mixes record schemas in one file.
        let total = report.loaded + report.dead();
        if (total > 0 && report.dead() * 2 > total) || version == Version::V1 {
            self.compact()?;
            report.compacted = true;
        }
        Ok(report)
    }

    /// Rewrites the snapshot keeping only the **first** record of each
    /// distinct point (matching load semantics, where the first record
    /// wins) and dropping rejected records and any unreadable tail.
    /// The rewrite goes through a sibling temp file and an atomic
    /// rename, so a crash mid-compaction leaves the original intact.
    ///
    /// Callers must own the file: compacting a snapshot a live daemon
    /// is appending to would lose the daemon's writes.
    ///
    /// # Errors
    ///
    /// I/O failures, and a present file whose magic line is foreign.
    /// A missing file is an empty snapshot: nothing to do.
    pub fn compact(&self) -> std::io::Result<CompactReport> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(CompactReport::default()),
            Err(e) => return Err(e),
        };
        if bytes.is_empty() {
            return Ok(CompactReport::default());
        }
        let Some(version) = detect_version(&bytes) else {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("{} is not a chain-nn dse cache file", self.path.display()),
            ));
        };
        let mut report = CompactReport::default();
        let mut seen: std::collections::HashMap<u64, Vec<DesignPoint>> =
            std::collections::HashMap::new();
        let mut live: Vec<(DesignPoint, PointOutcome)> = Vec::new();
        let mut at = MAGIC.len();
        while at < bytes.len() {
            let Some((payload, next)) = read_frame(&bytes, at) else {
                report.dropped_tail_bytes = (bytes.len() - at) as u64;
                break;
            };
            match decode_payload(payload, version) {
                Some((point, outcome)) => {
                    let bucket = seen.entry(point.content_hash()).or_default();
                    if bucket.contains(&point) {
                        report.dropped_duplicates += 1;
                    } else {
                        bucket.push(point.clone());
                        live.push((point, outcome));
                        report.kept += 1;
                    }
                }
                None => report.dropped_rejected += 1,
            }
            at = next;
        }

        let tmp_path = {
            let mut p = self.path.clone().into_os_string();
            p.push(".compact-tmp");
            PathBuf::from(p)
        };
        {
            let mut tmp = File::create(&tmp_path)?;
            let mut w = BufWriter::new(&mut tmp);
            w.write_all(MAGIC)?;
            for (point, outcome) in &live {
                let payload = encode_payload(point, outcome);
                w.write_all(&(payload.len() as u32).to_le_bytes())?;
                w.write_all(&fnv1a(&payload).to_le_bytes())?;
                w.write_all(&payload)?;
            }
            w.flush()?;
            drop(w);
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        Ok(report)
    }

    /// Appends `entries` as one batch of records, creating the file
    /// (with its magic line) on first use, then syncs file data to
    /// disk. Appending nothing is a no-op that touches nothing. A
    /// present v1 snapshot is upgraded (via [`CacheFile::compact`])
    /// before the first append, so one file never mixes versions; a
    /// file with a foreign magic line is refused.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (open, write, sync) and refuses foreign
    /// files.
    pub fn append(&self, entries: &[(DesignPoint, PointOutcome)]) -> std::io::Result<usize> {
        if entries.is_empty() {
            return Ok(0);
        }
        match std::fs::File::open(&self.path) {
            Err(e) if e.kind() == ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(mut existing) => {
                let mut head = [0u8; 32];
                let mut got = 0usize;
                while got < head.len() {
                    match existing.read(&mut head[got..])? {
                        0 => break,
                        n => got += n,
                    }
                }
                if got > 0 {
                    match detect_version(&head[..got]) {
                        Some(Version::V2) => {}
                        Some(Version::V1) => {
                            // Upgrade in place; compact always writes
                            // the current version.
                            self.compact()?;
                        }
                        None => {
                            return Err(std::io::Error::new(
                                ErrorKind::InvalidData,
                                format!("{} is not a chain-nn dse cache file", self.path.display()),
                            ));
                        }
                    }
                }
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let need_magic = file.metadata()?.len() == 0;
        let mut w = BufWriter::new(&mut file);
        if need_magic {
            w.write_all(MAGIC)?;
        }
        for (point, outcome) in entries {
            let payload = encode_payload(point, outcome);
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&fnv1a(&payload).to_le_bytes())?;
            w.write_all(&payload)?;
        }
        w.flush()?;
        drop(w);
        file.sync_data()?;
        Ok(entries.len())
    }

    /// Drains `cache`'s dirty journal into the file: the daemon's
    /// write-batch/shutdown flush. Returns how many records were
    /// appended.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheFile::append`] failures. The drained entries
    /// are re-inserted into the journal on failure, so a retried flush
    /// loses nothing.
    pub fn flush_dirty(&self, cache: &PointCache) -> std::io::Result<usize> {
        let started = std::time::Instant::now();
        let dirty = cache.take_dirty();
        match self.append(&dirty) {
            Ok(n) => {
                let obs = chain_nn_obs::global();
                obs.histogram("dse_persist_flush_ns")
                    .record_duration(started.elapsed());
                obs.counter("dse_persist_flushed_points_total")
                    .add(n as u64);
                Ok(n)
            }
            Err(e) => {
                // Put the journal back so a retried flush still sees
                // these entries. (Not via `insert`: the points are
                // already in the map, and its duplicate check would
                // skip re-journaling them.)
                cache.restore_dirty(dirty);
                Err(e)
            }
        }
    }
}

/// One frame at `at`: returns `(payload, next_offset)` when the length,
/// bounds and checksum all validate.
fn read_frame(bytes: &[u8], at: usize) -> Option<(&[u8], usize)> {
    let len_end = at.checked_add(4)?;
    let len = u32::from_le_bytes(bytes.get(at..len_end)?.try_into().ok()?);
    if len == 0 || len > MAX_PAYLOAD {
        return None;
    }
    let sum_end = len_end.checked_add(8)?;
    let sum = u64::from_le_bytes(bytes.get(len_end..sum_end)?.try_into().ok()?);
    let payload_end = sum_end.checked_add(len as usize)?;
    let payload = bytes.get(sum_end..payload_end)?;
    if fnv1a(payload) != sum {
        return None;
    }
    Some((payload, payload_end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chain_nn_persist_{tag}_{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn feasible(fps: f64) -> PointOutcome {
        PointOutcome::Feasible(PointResult {
            fps,
            achieved_gops: 2.0 * fps,
            peak_gops: 3.0 * fps,
            chip_mw: 500.0,
            dram_mw: 50.0,
            gates_k: 1000.0,
            sram_kb: 300.5,
            sqnr_db: 74.25,
        })
    }

    fn points(n: usize) -> Vec<DesignPoint> {
        (0..n)
            .map(|i| DesignPoint {
                pes: 121 + i,
                ..DesignPoint::paper_alexnet()
            })
            .collect()
    }

    #[test]
    fn round_trips_feasible_and_infeasible() {
        let path = temp_path("roundtrip");
        let file = CacheFile::new(&path);
        let pts = points(3);
        let entries = vec![
            (pts[0].clone(), feasible(123.456)),
            (pts[1].clone(), PointOutcome::Infeasible("too small".into())),
            (pts[2].clone(), feasible(0.25)),
        ];
        assert_eq!(file.append(&entries).unwrap(), 3);

        let cache = PointCache::new();
        let report = file.load_into(&cache).unwrap();
        assert_eq!(
            report,
            LoadReport {
                loaded: 3,
                ..LoadReport::default()
            }
        );
        for (p, o) in &entries {
            assert_eq!(cache.get(p), Some(o.clone()));
        }
        // Loaded entries are not dirty: nothing to flush back out.
        assert_eq!(file.flush_dirty(&cache).unwrap(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty_snapshot() {
        let file = CacheFile::new(temp_path("missing"));
        let cache = PointCache::new();
        assert_eq!(file.load_into(&cache).unwrap(), LoadReport::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely,not,a,cache\n1,2,3\n").unwrap();
        let err = CacheFile::new(&path).load_into(&PointCache::new());
        assert!(err.is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_keeps_whole_records() {
        let path = temp_path("truncated");
        let file = CacheFile::new(&path);
        let pts = points(2);
        file.append(&[
            (pts[0].clone(), feasible(10.0)),
            (pts[1].clone(), feasible(20.0)),
        ])
        .unwrap();
        // Tear the file mid-way through the second record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();

        let cache = PointCache::new();
        let report = file.load_into(&cache).unwrap();
        assert_eq!(report.loaded, 1);
        assert!(report.corrupt_tail_bytes > 0);
        assert_eq!(cache.get(&pts[0]), Some(feasible(10.0)));
        assert!(cache.get(&pts[1]).is_none());

        // The tear was truncated away, so an append after recovery is
        // visible to the next load.
        file.append(&[(pts[1].clone(), feasible(20.0))]).unwrap();
        let reloaded = PointCache::new();
        let report = file.load_into(&reloaded).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.corrupt_tail_bytes, 0);
        assert_eq!(reloaded.get(&pts[1]), Some(feasible(20.0)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_bit_fails_checksum_and_stops() {
        let path = temp_path("bitflip");
        let file = CacheFile::new(&path);
        let pts = points(3);
        file.append(&[
            (pts[0].clone(), feasible(1.0)),
            (pts[1].clone(), feasible(2.0)),
            (pts[2].clone(), feasible(3.0)),
        ])
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit inside the second record (skip magic +
        // record 1 exactly).
        let rec1_payload =
            u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap()) as usize;
        let rec2_start = MAGIC.len() + 4 + 8 + rec1_payload;
        bytes[rec2_start + 4 + 8 + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let cache = PointCache::new();
        let report = file.load_into(&cache).unwrap();
        assert_eq!(report.loaded, 1, "only the record before the flip");
        assert!(report.corrupt_tail_bytes > 0, "rest of file abandoned");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_flush_keeps_the_journal_for_retry() {
        // A path inside a directory that does not exist: append fails.
        let mut bad_path = std::env::temp_dir();
        bad_path.push(format!("chain_nn_no_such_dir_{}", std::process::id()));
        bad_path.push("cache.bin");
        let bad = CacheFile::new(&bad_path);

        let cache = PointCache::new();
        let pts = points(2);
        cache.insert(&pts[0], feasible(1.0));
        cache.insert(&pts[1], PointOutcome::Infeasible("x".into()));
        assert!(bad.flush_dirty(&cache).is_err());

        // The drained entries were restored: a retry against a good
        // path flushes all of them, losing nothing.
        let good_path = temp_path("retry");
        let good = CacheFile::new(&good_path);
        assert_eq!(good.flush_dirty(&cache).unwrap(), 2);
        let reloaded = PointCache::new();
        assert_eq!(good.load_into(&reloaded).unwrap().loaded, 2);
        assert_eq!(reloaded.get(&pts[0]), Some(feasible(1.0)));
        std::fs::remove_file(&good_path).unwrap();
    }

    #[test]
    fn compact_drops_duplicates_and_keeps_first_records() {
        let path = temp_path("compact");
        let file = CacheFile::new(&path);
        let pts = points(3);
        // Three live records, then the first two again (superseded
        // repeats, as an evict-then-reevaluate daemon produces).
        file.append(&[
            (pts[0].clone(), feasible(1.0)),
            (pts[1].clone(), feasible(2.0)),
            (pts[2].clone(), PointOutcome::Infeasible("x".into())),
        ])
        .unwrap();
        file.append(&[
            (pts[0].clone(), feasible(91.0)),
            (pts[1].clone(), feasible(92.0)),
        ])
        .unwrap();
        let before = std::fs::metadata(&path).unwrap().len();

        let report = file.compact().unwrap();
        assert_eq!(
            report,
            CompactReport {
                kept: 3,
                dropped_duplicates: 2,
                ..CompactReport::default()
            }
        );
        assert!(std::fs::metadata(&path).unwrap().len() < before);

        // Load semantics are unchanged: the FIRST record of each point
        // survived, and the compacted file is clean.
        let cache = PointCache::new();
        let load = file.load_into(&cache).unwrap();
        assert_eq!(load.loaded, 3);
        assert_eq!(load.dead(), 0);
        assert!(!load.compacted);
        assert_eq!(cache.get(&pts[0]), Some(feasible(1.0)));
        assert_eq!(cache.get(&pts[1]), Some(feasible(2.0)));
        // Idempotent: compacting a compacted file drops nothing.
        let again = file.compact().unwrap();
        assert_eq!(again.kept, 3);
        assert_eq!(again.dropped_duplicates, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_auto_compacts_when_most_records_are_dead() {
        let path = temp_path("autocompact");
        let file = CacheFile::new(&path);
        let pts = points(2);
        let entries = vec![
            (pts[0].clone(), feasible(1.0)),
            (pts[1].clone(), feasible(2.0)),
        ];
        // 2 live + 4 duplicate records: 66 % dead, over the 50 %
        // threshold.
        file.append(&entries).unwrap();
        file.append(&entries).unwrap();
        file.append(&entries).unwrap();
        let before = std::fs::metadata(&path).unwrap().len();

        let cache = PointCache::new();
        let report = file.load_into(&cache).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.duplicates, 4);
        assert!(report.compacted, "4/6 dead must trigger compaction");
        assert!(std::fs::metadata(&path).unwrap().len() < before);

        // Exactly-half dead does NOT trigger (threshold is strict).
        file.append(&entries).unwrap();
        let report = file.load_into(&PointCache::new()).unwrap();
        assert_eq!(report.duplicates, 2);
        assert!(!report.compacted);
        std::fs::remove_file(&path).unwrap();
    }

    /// Hand-writes a v1-format snapshot (seven f64 fields, v1 magic):
    /// what a pre-accuracy-model daemon left on disk.
    fn write_v1_file(path: &std::path::Path, entries: &[(DesignPoint, PointOutcome)]) {
        let mut bytes = MAGIC_V1.to_vec();
        for (point, outcome) in entries {
            // The v1 payload is the v2 payload minus the trailing sqnr
            // field on feasible outcomes.
            let mut payload = encode_payload(point, outcome);
            if matches!(outcome, PointOutcome::Feasible(_)) {
                payload.truncate(payload.len() - 8);
            }
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn v1_files_load_upgraded_with_measured_sqnr() {
        let path = temp_path("v1_upgrade");
        let pts = points(2);
        write_v1_file(
            &path,
            &[
                (pts[0].clone(), feasible(10.0)),
                (pts[1].clone(), PointOutcome::Infeasible("too small".into())),
            ],
        );

        let cache = PointCache::new();
        let file = CacheFile::new(&path);
        let report = file.load_into(&cache).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.rejected, 0);
        assert!(report.compacted, "v1 files are rewritten as v2 on load");

        // The feasible record was upgraded with the measured SQNR of
        // its (net, word) pair — not the NaN placeholder.
        let Some(PointOutcome::Feasible(r)) = cache.get(&pts[0]) else {
            panic!("feasible record lost in upgrade");
        };
        let expected = crate::accuracy::sqnr_for(&pts[0].net, pts[0].word_bits).unwrap();
        assert_eq!(r.sqnr_db.to_bits(), expected.to_bits());
        // Everything else round-tripped bit-exactly.
        assert_eq!(r.fps, 10.0);
        assert_eq!(r.sram_kb, 300.5);

        // The file on disk is now v2: a fresh load sees current magic,
        // keeps the upgraded SQNR, and needs no further rewrite.
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..MAGIC.len()], MAGIC);
        let cache2 = PointCache::new();
        let report2 = file.load_into(&cache2).unwrap();
        assert_eq!(report2.loaded, 2);
        assert!(!report2.compacted);
        assert_eq!(cache2.get(&pts[0]), cache.get(&pts[0]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_upgrades_v1_files_instead_of_mixing_versions() {
        let path = temp_path("v1_append");
        let pts = points(3);
        write_v1_file(&path, &[(pts[0].clone(), feasible(1.0))]);

        let file = CacheFile::new(&path);
        assert_eq!(file.append(&[(pts[1].clone(), feasible(2.0))]).unwrap(), 1);
        // One readable v2 file holding both the upgraded v1 record and
        // the appended one.
        let cache = PointCache::new();
        let report = file.load_into(&cache).unwrap();
        assert_eq!(report.loaded, 2);
        assert_eq!(report.corrupt_tail_bytes, 0);
        assert!(cache.get(&pts[0]).is_some());
        assert_eq!(cache.get(&pts[1]), Some(feasible(2.0)));
        std::fs::remove_file(&path).unwrap();

        // Appending to a foreign file is refused, protecting it.
        let foreign = temp_path("foreign_append");
        std::fs::write(&foreign, b"someone else's data that is long enough\n").unwrap();
        assert!(CacheFile::new(&foreign)
            .append(&[(pts[2].clone(), feasible(3.0))])
            .is_err());
        assert_eq!(
            std::fs::read(&foreign).unwrap(),
            b"someone else's data that is long enough\n"
        );
        std::fs::remove_file(&foreign).unwrap();
    }

    #[test]
    fn loading_seeds_the_accuracy_memo() {
        // A record whose (net, word) pair no measurement would produce:
        // loading must seed the memo so the daemon serves it as-is.
        let path = temp_path("seed_memo");
        let file = CacheFile::new(&path);
        let point = DesignPoint {
            net: "mobilenet".into(),
            word_bits: 16,
            pes: 121,
            ..DesignPoint::paper_alexnet()
        };
        let outcome = PointOutcome::Feasible(PointResult {
            sqnr_db: 61.5,
            ..match feasible(5.0) {
                PointOutcome::Feasible(r) => r,
                PointOutcome::Infeasible(_) => unreachable!(),
            }
        });
        file.append(&[(point.clone(), outcome)]).unwrap();
        // Settle every pair other tests can measure before reading the
        // process-global counter (see accuracy::warm_counter_visible_pairs).
        crate::accuracy::warm_counter_visible_pairs();
        let before = crate::accuracy::recomputations();
        file.load_into(&PointCache::new()).unwrap();
        assert_eq!(
            crate::accuracy::sqnr_for("mobilenet", 16).unwrap(),
            61.5,
            "loaded SQNR must pre-seed the memo"
        );
        assert_eq!(crate::accuracy::recomputations(), before);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_missing_and_foreign_files() {
        let file = CacheFile::new(temp_path("compact_missing"));
        assert_eq!(file.compact().unwrap(), CompactReport::default());
        let path = temp_path("compact_foreign");
        std::fs::write(&path, b"someone else's data\n").unwrap();
        assert!(CacheFile::new(&path).compact().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incremental_appends_accumulate() {
        let path = temp_path("incremental");
        let file = CacheFile::new(&path);
        let pts = points(4);

        let cache = PointCache::new();
        cache.insert(&pts[0], feasible(1.0));
        cache.insert(&pts[1], feasible(2.0));
        assert_eq!(file.flush_dirty(&cache).unwrap(), 2);
        cache.insert(&pts[2], PointOutcome::Infeasible("nope".into()));
        assert_eq!(file.flush_dirty(&cache).unwrap(), 1);
        assert_eq!(file.flush_dirty(&cache).unwrap(), 0, "journal drained");

        let reloaded = PointCache::new();
        let report = file.load_into(&reloaded).unwrap();
        assert_eq!(report.loaded, 3);
        assert_eq!(reloaded.len(), 3);
        assert!(reloaded.get(&pts[3]).is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
