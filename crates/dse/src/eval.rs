//! Evaluation of one design point through the full model stack:
//! performance (fps), power (on-chip + DRAM interface), and area.

use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::ChainConfig;
use chain_nn_energy::area::AreaModel;
use chain_nn_energy::power::PowerModel;
use chain_nn_mem::MemoryConfig;

use crate::spec::DesignPoint;
use crate::{network_by_name, DseError};

/// Model outputs for one feasible design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointResult {
    /// Frames per second (paper-calibrated cycle model).
    pub fps: f64,
    /// Achieved throughput on the workload, GOPS.
    pub achieved_gops: f64,
    /// Peak throughput of the configuration, GOPS.
    pub peak_gops: f64,
    /// On-chip power, mW (chain + kMemory + iMemory + oMemory).
    pub chip_mw: f64,
    /// DRAM interface power, mW (the paper reports it separately; the
    /// DSE includes it in the system-power objective so that kMemory /
    /// SRAM sizing is a real traffic-vs-capacity tradeoff).
    pub dram_mw: f64,
    /// Chain logic area in NAND2-equivalent kilo-gates.
    pub gates_k: f64,
    /// Total on-chip SRAM (iMemory + oMemory + kMemory), KB.
    pub sram_kb: f64,
    /// Measured float-vs-fixed SQNR of this point's network at this
    /// point's operand width, dB (the [`crate::accuracy`] model; a pure
    /// function of `(net, word_bits)`, so every point of one network at
    /// one width carries the same value).
    pub sqnr_db: f64,
}

impl PointResult {
    /// System power: on-chip plus DRAM interface, mW. One of the three
    /// Pareto objectives (minimize).
    pub fn system_mw(&self) -> f64 {
        self.chip_mw + self.dram_mw
    }

    /// Whole-chip energy efficiency, peak GOPS per on-chip watt (the
    /// paper's headline metric).
    pub fn gops_per_watt(&self) -> f64 {
        self.peak_gops / (self.chip_mw / 1e3)
    }

    /// Fraction of peak throughput sustained on the workload.
    pub fn utilization(&self) -> f64 {
        self.achieved_gops / self.peak_gops
    }
}

/// Outcome of evaluating one point: the grid may legitimately contain
/// configurations the architecture cannot run (e.g. a chain shorter
/// than K² for some layer), which are recorded rather than aborting the
/// sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcome {
    /// The point maps and the models produced a result.
    Feasible(PointResult),
    /// The point cannot run this workload; the reason is kept for the
    /// report.
    Infeasible(String),
}

impl PointOutcome {
    /// The result, if feasible.
    pub fn result(&self) -> Option<&PointResult> {
        match self {
            PointOutcome::Feasible(r) => Some(r),
            PointOutcome::Infeasible(_) => None,
        }
    }
}

/// Runs the full model stack on one design point.
///
/// Mapping failures (kernel too large for the chain, undersized SRAM
/// tiles) are reported as [`PointOutcome::Infeasible`]; spec-level
/// problems (unknown network, invalid chain parameters) are hard
/// errors.
///
/// # Errors
///
/// Returns [`DseError::Spec`] when the point itself is malformed —
/// unknown network name, unsupported word width, or parameters
/// `ChainConfig` rejects.
///
/// # Example
///
/// ```
/// use chain_nn_dse::{evaluate, DesignPoint};
///
/// let point = DesignPoint {
///     net: "lenet".into(),
///     pes: 25, // LeNet's 5x5 kernels tile 25 PEs exactly
///     ..DesignPoint::paper_alexnet()
/// };
/// let result = *evaluate(&point).unwrap().result().unwrap();
/// assert!(result.fps > 0.0);
/// assert!(result.system_mw() > result.chip_mw);
/// // Every feasible point carries its measured accuracy:
/// assert!(result.sqnr_db > 40.0);
/// ```
pub fn evaluate(point: &DesignPoint) -> Result<PointOutcome, DseError> {
    let net = network_by_name(&point.net)
        .ok_or_else(|| DseError::Spec(format!("unknown network '{}'", point.net)))?;
    if !matches!(point.word_bits, 8 | 16) {
        // Sub-byte packing is not modeled (MemoryConfig counts whole
        // bytes per word); reject rather than silently alias to 8-bit.
        return Err(DseError::Spec(format!(
            "word width {} unsupported (expected 8 or 16 bits)",
            point.word_bits
        )));
    }
    let cfg = ChainConfig::builder()
        .num_pes(point.pes)
        .freq_mhz(point.freq_mhz)
        .kmemory_depth(point.kmem_depth)
        .build()
        .map_err(|e| DseError::Spec(e.to_string()))?;
    let mem = MemoryConfig {
        imem_bytes: point.imem_kb * 1024,
        omem_bytes: point.omem_kb * 1024,
        word_bytes: point.word_bits as usize / 8,
    };

    let perf = match PerfModel::new(cfg).network(&net, point.batch, CycleModel::PaperCalibrated) {
        Ok(p) => p,
        Err(e) => return Ok(PointOutcome::Infeasible(e.to_string())),
    };
    let power = match PowerModel::with_operand_bits(cfg, mem, point.word_bits)
        .network_power(&net, point.batch)
    {
        Ok(p) => p,
        Err(e) => return Ok(PointOutcome::Infeasible(e.to_string())),
    };
    let area = AreaModel::with_operand_bits(cfg, point.word_bits);
    // Memoized per (net, word_bits): the measurement runs once per
    // process per pair, however many grid points share it.
    let sqnr_db = crate::accuracy::sqnr_for(&point.net, point.word_bits)?;

    Ok(PointOutcome::Feasible(PointResult {
        fps: perf.fps,
        achieved_gops: perf.gops,
        peak_gops: cfg.peak_gops(),
        chip_mw: power.breakdown.total_mw(),
        dram_mw: power.dram_mw,
        gates_k: area.total_gates() / 1e3,
        sram_kb: area.onchip_memory_bytes(mem.imem_bytes, mem.omem_bytes) as f64 / 1024.0,
        sqnr_db,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_reproduces_headline_numbers() {
        let out = evaluate(&DesignPoint::paper_alexnet()).unwrap();
        let r = out.result().expect("paper point is feasible");
        assert_eq!(r.peak_gops, 806.4);
        // Fig. 10: 567.5 mW on-chip; fitted model lands within ~6 %.
        assert!(
            (r.chip_mw - 567.5).abs() / 567.5 < 0.06,
            "chip {}",
            r.chip_mw
        );
        assert!((r.gops_per_watt() - 1421.0).abs() / 1421.0 < 0.06);
        assert!(r.fps > 200.0);
        assert!(r.dram_mw > 0.0);
        assert!(r.sram_kb > 300.0);
    }

    #[test]
    fn too_short_chain_is_infeasible_not_fatal() {
        let point = DesignPoint {
            pes: 64, // AlexNet conv1 is 11x11 -> needs 121 PEs
            ..DesignPoint::paper_alexnet()
        };
        match evaluate(&point).unwrap() {
            PointOutcome::Infeasible(reason) => {
                assert!(!reason.is_empty());
            }
            PointOutcome::Feasible(_) => panic!("64 PEs cannot run K=11"),
        }
    }

    #[test]
    fn unknown_network_is_a_hard_error() {
        let point = DesignPoint {
            net: "notanet".into(),
            ..DesignPoint::paper_alexnet()
        };
        assert!(evaluate(&point).is_err());
    }

    #[test]
    fn sub_byte_word_width_is_rejected_not_aliased() {
        let point = DesignPoint {
            word_bits: 4,
            ..DesignPoint::paper_alexnet()
        };
        assert!(matches!(evaluate(&point), Err(DseError::Spec(m)) if m.contains('4')));
    }

    #[test]
    fn narrower_words_cut_power_and_area_not_speed() {
        let p16 = DesignPoint::paper_alexnet();
        let p8 = DesignPoint {
            word_bits: 8,
            ..p16.clone()
        };
        let r16 = *evaluate(&p16).unwrap().result().unwrap();
        let r8 = *evaluate(&p8).unwrap().result().unwrap();
        assert_eq!(r16.fps, r8.fps);
        assert!(r8.chip_mw < r16.chip_mw);
        assert!(r8.dram_mw < r16.dram_mw);
        assert!(r8.gates_k < r16.gates_k);
        assert!(r8.sram_kb < r16.sram_kb);
        // ...but narrow words now pay a measured accuracy cost, so they
        // no longer dominate for free.
        assert!(r8.sqnr_db + 20.0 < r16.sqnr_db);
    }

    #[test]
    fn sqnr_depends_only_on_net_and_width() {
        let a = *evaluate(&DesignPoint::paper_alexnet())
            .unwrap()
            .result()
            .unwrap();
        let b = *evaluate(&DesignPoint {
            pes: 800,
            freq_mhz: 350.0,
            batch: 1,
            ..DesignPoint::paper_alexnet()
        })
        .unwrap()
        .result()
        .unwrap();
        assert_eq!(a.sqnr_db.to_bits(), b.sqnr_db.to_bits());
        assert!(a.sqnr_db.is_finite() && a.sqnr_db > 0.0);
    }
}
