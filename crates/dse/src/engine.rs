//! The work-assisting execution engine every executor in the workspace
//! runs on.
//!
//! Before this module the repo had three near-identical worker loops:
//! the sweep executor's atomic-cursor drain, the serving daemon's
//! fixed-batch round-robin scheduler, and (through the first) the
//! tuner's round evaluator. This engine unifies them behind one claim
//! protocol, borrowed from the work-assisting loops of the parallel
//! scan literature: each admitted job carries its own atomic progress
//! state — a **claim cursor** (`fetch_add` hands a worker an exclusive
//! index range) and a **completed counter** (delivered points, the
//! job's published progress) — so any idle worker self-distributes
//! onto whichever job still has unclaimed work instead of waiting for
//! a rotation turn or a job of its own.
//!
//! Claim sizes adapt to what the queue looks like
//! ([`ClaimPolicy::Adaptive`]): when several jobs are open the engine
//! claims 1–4 points at a time so an interactive one-point eval behind
//! a huge sweep waits microseconds, not a 32-point batch; when a
//! single sweep owns the queue it claims large ranges (up to the
//! policy's `max`) to amortize locking, shrinking again near the tail
//! (`remaining / 2·workers`) so the last stretch of a big job is
//! finished by the whole pool rather than one straggler.
//!
//! Determinism is structural: workers keep `(index, outcome)` pairs
//! and [`JobHandle::wait`] sorts by index, so results are
//! byte-identical at any thread count and under any claim policy.
//!
//! Admission, fairness and accounting carry over from the daemon
//! scheduler this module absorbed: bounded admission with an explicit
//! busy error ([`SubmitError::Busy`]), RAII slots for multi-round
//! requests ([`Engine::admit`]), per-job cache hit/miss counters
//! (global cache deltas would cross-contaminate concurrent clients),
//! queue-wait/execute timing per job, and per-claim trace spans tagged
//! with the executing worker ([`TraceRef`]). [`Engine::queue_depth`]
//! reports remaining **points** across admitted jobs — under adaptive
//! claims a nearly-done sweep is nearly-zero depth, not "one job".

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use chain_nn_obs::{Counter, Histogram, Registry};

use crate::cache::PointCache;
use crate::eval::PointOutcome;
use crate::executor;
use crate::spec::DesignPoint;
use crate::DseError;

/// Default upper bound on one claim. Large enough that the engine lock
/// is cold next to the evaluations themselves; small enough that a
/// sweep's tail still spreads across the pool.
pub const DEFAULT_MAX_CLAIM: usize = 32;

/// Claim size while more than one job has unclaimed work: small, so
/// interactive evals interleave within a few points of model
/// evaluation rather than behind a full batch.
pub const CONTENDED_CLAIM: usize = 4;

/// How long claims stay contended-sized after the queue was last seen
/// with more than one open job. A serial client pumping one-point
/// evals leaves microsecond gaps between jobs; without hysteresis a
/// worker claiming inside such a gap would take a full `max`-sized
/// range and the *next* eval would wait behind all of it. The window
/// is far longer than a client round trip and far shorter than any
/// sweep, so a lone sweep reclaims full-size batches 10 ms after the
/// interactive traffic stops.
pub const CONTENTION_HYSTERESIS: Duration = Duration::from_millis(10);

/// How many points one cursor bump claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimPolicy {
    /// Always claim up to `n` points — the pre-engine fixed-batch
    /// behavior, kept as the comparison baseline for the mixed-traffic
    /// tail-latency bench.
    Fixed(usize),
    /// Adapt to queue shape: [`CONTENDED_CLAIM`] while several jobs
    /// are open, up to `max` when one job owns the queue, shrinking
    /// near the tail so idle workers assist the finish.
    Adaptive {
        /// Upper bound on one claim.
        max: usize,
    },
}

impl ClaimPolicy {
    /// The default policy: adaptive with [`DEFAULT_MAX_CLAIM`].
    #[must_use]
    pub fn adaptive() -> ClaimPolicy {
        ClaimPolicy::Adaptive {
            max: DEFAULT_MAX_CLAIM,
        }
    }

    /// Points to claim given whether the queue is `contended` (more
    /// than one open job now, or within the hysteresis window), the
    /// chosen job's `remaining` unclaimed points, and the live
    /// `workers` count. Always at least 1.
    fn size(self, contended: bool, remaining: usize, workers: usize) -> usize {
        let cap = match self {
            ClaimPolicy::Fixed(n) => n,
            ClaimPolicy::Adaptive { max } => {
                if contended {
                    CONTENDED_CLAIM.min(max.max(1))
                } else {
                    // One job owns the queue: claim big to amortize the
                    // lock, but never more than a worker's fair share
                    // of what is left — the tail belongs to everyone.
                    (remaining / (2 * workers.max(1))).clamp(1, max.max(1))
                }
            }
        };
        cap.max(1)
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission bound is reached; retry later.
    Busy {
        /// Jobs currently admitted.
        active: usize,
        /// The admission bound.
        capacity: usize,
    },
    /// The engine is draining for shutdown and admits nothing new.
    ShuttingDown,
}

/// Which trace a job's claim spans belong to: the owning trace id and
/// the request's root span the claims hang under. Carried on the job
/// so the worker that executes a claim — not the submitting thread —
/// records the span, with its own worker index as the timeline row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    /// Owning trace (see [`chain_nn_obs::trace`]).
    pub trace_id: u64,
    /// The request's root span id; claim spans parent onto it.
    pub parent_span: u64,
}

/// The engine's registered metric handles (registration happens at
/// construction; recording is lock-free). The `prefix` given to
/// [`EngineMetrics::register`] names the families — `sched_*` for the
/// daemon scheduler, `dse_*` for standalone sweeps — so each embedding
/// keeps the catalog names its dashboards already scrape.
pub struct EngineMetrics {
    /// Wall time per claimed range evaluation (`{prefix}_batch_eval_ns`).
    batch_eval_ns: Arc<Histogram>,
    /// Points per claim (`{prefix}_claim_points`) — the observable
    /// proof of the adaptive policy: contended traffic shows 1–4-point
    /// claims, a lone sweep shows `max`-sized ones.
    claim_points: Arc<Histogram>,
    /// Claims executed (`{prefix}_batches_total`).
    batches: Arc<Counter>,
    /// Points evaluated through the engine (`{prefix}_points_total`).
    points: Arc<Counter>,
}

impl EngineMetrics {
    /// Registers the engine's metric families in `registry` under
    /// `prefix` (e.g. `sched` → `sched_batch_eval_ns`,
    /// `sched_claim_points`, `sched_batches_total`,
    /// `sched_points_total`).
    #[must_use]
    pub fn register(registry: &Registry, prefix: &str) -> EngineMetrics {
        EngineMetrics {
            batch_eval_ns: registry.histogram(&format!("{prefix}_batch_eval_ns")),
            claim_points: registry.histogram(&format!("{prefix}_claim_points")),
            batches: registry.counter(&format!("{prefix}_batches_total")),
            points: registry.counter(&format!("{prefix}_points_total")),
        }
    }
}

/// One admitted job: an immutable point list plus the atomic progress
/// pair of the work-assisting protocol. `cursor` is the claim edge
/// (workers `fetch_add` exclusive ranges off it, no lock needed for
/// the bump itself); `completed` is the delivery edge (points whose
/// outcomes reached the completion state), which is what
/// [`Engine::queue_depth`] reports as remaining work.
struct JobCore {
    points: Arc<Vec<DesignPoint>>,
    cursor: AtomicUsize,
    completed: AtomicUsize,
    done: Arc<Completion>,
    trace: Option<TraceRef>,
}

impl JobCore {
    fn total(&self) -> usize {
        self.points.len()
    }

    fn fully_claimed(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.total()
    }

    /// Points not yet delivered (claimed-but-evaluating still counts:
    /// the work exists even if no longer claimable).
    fn remaining(&self) -> usize {
        self.total()
            .saturating_sub(self.completed.load(Ordering::Relaxed))
    }
}

/// Completion state shared between the workers and the waiting
/// submitter.
#[derive(Debug)]
struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
    slot: SlotOwnership,
    /// When the job entered the queue.
    submitted: Instant,
    /// When a worker first claimed a range of it. A `OnceLock` rather
    /// than a field under either lock: `claim()` holds the engine lock
    /// and the waiter reads under the completion lock, and this way
    /// neither has to take the other.
    first_claimed: OnceLock<Instant>,
    /// When the last claim was delivered (set under the completion
    /// lock, before the waiter is notified).
    finished_at: OnceLock<Instant>,
}

#[derive(Debug)]
struct CompletionState {
    results: Vec<(usize, PointOutcome)>,
    finished: usize,
    total: usize,
    /// Per-job cache traffic (global cache deltas would count the other
    /// clients' concurrent activity too).
    cache_hits: u64,
    cache_misses: u64,
    error: Option<DseError>,
    /// Set exactly once, by the worker that observed completion first;
    /// guards the active-count decrement against racing late claims.
    closed: bool,
}

/// Whether completing this job releases an admission slot. Jobs from
/// [`Engine::submit`] own their slot; jobs from [`Engine::submit_in`]
/// run inside an [`AdmissionSlot`] that releases on drop instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOwnership {
    Owned,
    External,
}

/// Everything one finished job produced.
#[derive(Debug)]
pub struct JobResult {
    /// Outcomes in the submitted point order.
    pub outcomes: Vec<PointOutcome>,
    /// Lookups this job answered from the shared cache.
    pub cache_hits: u64,
    /// Fresh evaluations this job paid for.
    pub cache_misses: u64,
    /// Submission → first claim: time spent queued behind other jobs
    /// (zero for empty jobs, which are never claimed).
    pub queue_wait: Duration,
    /// First claim → last delivery: time spent actually evaluating
    /// (including gaps while workers served other jobs' claims).
    pub execute: Duration,
}

/// Handle the submitter blocks on.
#[derive(Debug)]
pub struct JobHandle {
    done: Arc<Completion>,
}

impl JobHandle {
    /// Blocks until every point of the job is evaluated (or the job
    /// failed), returning outcomes in the submitted point order.
    ///
    /// # Errors
    ///
    /// The first spec-level evaluation error the workers hit, or the
    /// shutdown notice if the engine was torn down mid-job.
    pub fn wait(self) -> Result<JobResult, DseError> {
        let mut state = self.done.state.lock().expect("completion lock poisoned");
        while state.error.is_none() && state.finished < state.total {
            state = self.done.cv.wait(state).expect("completion lock poisoned");
        }
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        let mut results = std::mem::take(&mut state.results);
        results.sort_by_key(|(i, _)| *i);
        let end = self
            .done
            .finished_at
            .get()
            .copied()
            .unwrap_or_else(Instant::now);
        let (queue_wait, execute) = match self.done.first_claimed.get() {
            Some(&first) => (
                first.saturating_duration_since(self.done.submitted),
                end.saturating_duration_since(first),
            ),
            // Never claimed: the empty-job fast path.
            None => (Duration::ZERO, Duration::ZERO),
        };
        Ok(JobResult {
            outcomes: results.into_iter().map(|(_, o)| o).collect(),
            cache_hits: state.cache_hits,
            cache_misses: state.cache_misses,
            queue_wait,
            execute,
        })
    }
}

/// One claimed range: evaluate `job.points[start..end]`, deliver to
/// the job's completion state.
struct Claimed {
    job: Arc<JobCore>,
    start: usize,
    end: usize,
}

struct EngineState {
    jobs: Vec<Arc<JobCore>>,
    /// Round-robin pick position: consecutive claims start from
    /// successive jobs, so no open job waits more than one claim for
    /// its turn even before work-assisting kicks in.
    rotation: usize,
    /// When the queue last had more than one open job; claims within
    /// [`CONTENTION_HYSTERESIS`] of it stay contended-sized.
    last_contended: Option<Instant>,
    shutting_down: bool,
    active: usize,
}

/// The shared engine; construct once, hand references to the worker
/// pool and every submitter.
pub struct Engine {
    state: Mutex<EngineState>,
    work_ready: Condvar,
    capacity: usize,
    policy: ClaimPolicy,
    span_name: &'static str,
    metrics: EngineMetrics,
    /// Workers currently inside [`Engine::worker_loop_indexed`] — the
    /// divisor of the adaptive tail-splitting rule.
    workers: AtomicUsize,
    /// Points delivered over the engine's lifetime; reconciles with
    /// the `{prefix}_points_total` counter.
    completed_total: AtomicU64,
}

impl Engine {
    /// An engine admitting at most `capacity` concurrent jobs under
    /// `policy`. Metrics land in a private throwaway registry; use
    /// [`Engine::with_registry`] to surface them.
    #[must_use]
    pub fn new(capacity: usize, policy: ClaimPolicy) -> Engine {
        Engine::with_registry(capacity, policy, &Registry::new())
    }

    /// [`Engine::new`], registering the claim metrics in `registry`
    /// under the `sched` prefix with `batch` spans — the daemon
    /// scheduler's catalog names.
    #[must_use]
    pub fn with_registry(capacity: usize, policy: ClaimPolicy, registry: &Registry) -> Engine {
        Engine::with_metrics(
            capacity,
            policy,
            EngineMetrics::register(registry, "sched"),
            "batch",
        )
    }

    /// The fully explicit constructor: metric handles and the span
    /// name claims record under (`batch` in the daemon, `chunk` in
    /// standalone sweeps) are the embedder's choice.
    #[must_use]
    pub fn with_metrics(
        capacity: usize,
        policy: ClaimPolicy,
        metrics: EngineMetrics,
        span_name: &'static str,
    ) -> Engine {
        Engine {
            state: Mutex::new(EngineState {
                jobs: Vec::new(),
                rotation: 0,
                last_contended: None,
                shutting_down: false,
                active: 0,
            }),
            work_ready: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            span_name,
            metrics,
            workers: AtomicUsize::new(0),
            completed_total: AtomicU64::new(0),
        }
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The claim policy this engine was built with.
    #[must_use]
    pub fn policy(&self) -> ClaimPolicy {
        self.policy
    }

    /// Jobs admitted and not yet finished.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.state.lock().expect("engine lock poisoned").active
    }

    /// Remaining **points** across admitted unfinished jobs — claimed
    /// or not, evaluated points no longer count. Under adaptive claims
    /// this is the honest backlog: a 1000-point sweep with 990 points
    /// delivered reports 10, not "one job".
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.state
            .lock()
            .expect("engine lock poisoned")
            .jobs
            .iter()
            .map(|j| j.remaining())
            .sum()
    }

    /// Points delivered over the engine's lifetime. Reconciles with
    /// the `{prefix}_points_total` counter and, summed per job, with
    /// each job's outcome count — the contention stress tests assert
    /// exactly that.
    #[must_use]
    pub fn completed_points(&self) -> u64 {
        self.completed_total.load(Ordering::Relaxed)
    }

    fn completion(total: usize, slot: SlotOwnership) -> Arc<Completion> {
        Arc::new(Completion {
            state: Mutex::new(CompletionState {
                results: Vec::with_capacity(total),
                finished: 0,
                total,
                cache_hits: 0,
                cache_misses: 0,
                error: None,
                closed: false,
            }),
            cv: Condvar::new(),
            slot,
            submitted: Instant::now(),
            first_claimed: OnceLock::new(),
            finished_at: OnceLock::new(),
        })
    }

    /// Admits `points` as one job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] at the admission bound;
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn submit(&self, points: Vec<DesignPoint>) -> Result<JobHandle, SubmitError> {
        self.submit_traced(points, None)
    }

    /// [`Engine::submit`], tagging the job so every range a worker
    /// claims from it records a span under `trace`.
    ///
    /// # Errors
    ///
    /// Exactly [`Engine::submit`]'s.
    pub fn submit_traced(
        &self,
        points: Vec<DesignPoint>,
        trace: Option<TraceRef>,
    ) -> Result<JobHandle, SubmitError> {
        let total = points.len();
        let done = Engine::completion(total, SlotOwnership::Owned);
        {
            let mut state = self.state.lock().expect("engine lock poisoned");
            if state.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            if state.active >= self.capacity {
                return Err(SubmitError::Busy {
                    active: state.active,
                    capacity: self.capacity,
                });
            }
            state.active += 1;
            if total > 0 {
                state.jobs.push(Arc::new(JobCore {
                    points: Arc::new(points),
                    cursor: AtomicUsize::new(0),
                    completed: AtomicUsize::new(0),
                    done: Arc::clone(&done),
                    trace,
                }));
            } else {
                // An empty job completes immediately; it was still
                // admission-checked so capacity semantics are uniform.
                state.active -= 1;
            }
        }
        self.work_ready.notify_all();
        Ok(JobHandle { done })
    }

    /// Reserves one admission slot without submitting work yet — the
    /// entry point for iterative requests that will run several
    /// [`Engine::submit_in`] rounds under a single unit of admission.
    /// The slot is released when the returned guard drops.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] at the admission bound;
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn admit(&self) -> Result<AdmissionSlot<'_>, SubmitError> {
        let mut state = self.state.lock().expect("engine lock poisoned");
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.active >= self.capacity {
            return Err(SubmitError::Busy {
                active: state.active,
                capacity: self.capacity,
            });
        }
        state.active += 1;
        Ok(AdmissionSlot { engine: self })
    }

    /// Enqueues `points` as one job inside an already-held admission
    /// slot: no capacity check (the slot is the capacity), same claim
    /// protocol as every other job. The borrow ties the job to its
    /// slot, so a round cannot outlive the admission it runs under.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] once shutdown began — admitted
    /// slots do not exempt *new* rounds from the drain.
    pub fn submit_in(
        &self,
        slot: &AdmissionSlot<'_>,
        points: Vec<DesignPoint>,
    ) -> Result<JobHandle, SubmitError> {
        self.submit_in_traced(slot, points, None)
    }

    /// [`Engine::submit_in`], tagging the round's job so its claim
    /// spans land under `trace` (the tune request's root span).
    ///
    /// # Errors
    ///
    /// Exactly [`Engine::submit_in`]'s.
    pub fn submit_in_traced(
        &self,
        _slot: &AdmissionSlot<'_>,
        points: Vec<DesignPoint>,
        trace: Option<TraceRef>,
    ) -> Result<JobHandle, SubmitError> {
        let total = points.len();
        let done = Engine::completion(total, SlotOwnership::External);
        {
            let mut state = self.state.lock().expect("engine lock poisoned");
            if state.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            if total > 0 {
                state.jobs.push(Arc::new(JobCore {
                    points: Arc::new(points),
                    cursor: AtomicUsize::new(0),
                    completed: AtomicUsize::new(0),
                    done: Arc::clone(&done),
                    trace,
                }));
            }
        }
        self.work_ready.notify_all();
        Ok(JobHandle { done })
    }

    /// The non-blocking claim core. Every cursor bump happens under
    /// the engine lock (the bump itself is an atomic `fetch_add`, so
    /// the error path may concurrently snap the cursor forward — the
    /// post-bump range check below covers that race).
    fn try_claim_locked(&self, state: &mut EngineState) -> Option<Claimed> {
        let n = state.jobs.len();
        if n == 0 {
            return None;
        }
        let open = state.jobs.iter().filter(|j| !j.fully_claimed()).count();
        if open == 0 {
            return None;
        }
        if open > 1 {
            state.last_contended = Some(Instant::now());
        }
        let contended = open > 1
            || state
                .last_contended
                .is_some_and(|t| t.elapsed() < CONTENTION_HYSTERESIS);
        let workers = self.workers.load(Ordering::Relaxed);
        for _ in 0..n {
            let idx = state.rotation % n;
            state.rotation = state.rotation.wrapping_add(1);
            let job = Arc::clone(&state.jobs[idx]);
            let total = job.total();
            let cursor = job.cursor.load(Ordering::Relaxed);
            if cursor >= total {
                continue;
            }
            let size = self.policy.size(contended, total - cursor, workers);
            let start = job.cursor.fetch_add(size, Ordering::Relaxed);
            if start >= total {
                // Raced with an error poisoning this job; nothing left.
                continue;
            }
            let end = (start + size).min(total);
            // First claim of this job ends its queue wait.
            let _ = job.done.first_claimed.set(Instant::now());
            return Some(Claimed { job, start, end });
        }
        None
    }

    /// Claims the next range. Blocks while idle; returns `None` once
    /// shutdown began *and* all admitted work is claimed — the worker
    /// exit condition. Partially-claimed jobs therefore drain fully:
    /// a worker never exits while any admitted job has an unclaimed
    /// point, and in-flight claims deliver before their workers leave.
    fn claim(&self) -> Option<Claimed> {
        let mut state = self.state.lock().expect("engine lock poisoned");
        loop {
            if let Some(claimed) = self.try_claim_locked(&mut state) {
                return Some(claimed);
            }
            if state.shutting_down && state.jobs.iter().all(|j| j.fully_claimed()) {
                return None;
            }
            state = self.work_ready.wait(state).expect("engine lock poisoned");
        }
    }

    fn finish_job(&self) {
        let mut state = self.state.lock().expect("engine lock poisoned");
        state.active -= 1;
    }

    /// Stops admission and wakes every idle worker so the pool can
    /// drain admitted jobs and exit.
    pub fn begin_shutdown(&self) {
        self.state
            .lock()
            .expect("engine lock poisoned")
            .shutting_down = true;
        self.work_ready.notify_all();
    }

    /// One worker: claim → evaluate through `cache` → deliver, until
    /// shutdown drains the queue. Run this on N std threads.
    /// ([`Engine::worker_loop_indexed`] additionally tags claim spans
    /// with the worker's pool index; this entry point is worker 0, for
    /// tests and single-threaded embedding.)
    pub fn worker_loop(&self, cache: &PointCache) {
        self.worker_loop_indexed(0, cache);
    }

    /// [`Engine::worker_loop`] with an explicit pool index: claims of
    /// traced jobs record a span tagged with `worker`, so a sweep's
    /// trace renders as a per-thread timeline.
    pub fn worker_loop_indexed(&self, worker: u32, cache: &PointCache) {
        self.workers.fetch_add(1, Ordering::Relaxed);
        while let Some(claimed) = self.claim() {
            self.execute_claim(claimed, worker, cache);
        }
        self.workers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Executes at most one pending claim on the calling thread,
    /// returning whether there was one. Never blocks — the
    /// deterministic single-step the depth/drain tests are built on,
    /// and a way for an embedder to lend its own thread briefly.
    pub fn run_one_claim(&self, cache: &PointCache) -> bool {
        let claimed = {
            let mut state = self.state.lock().expect("engine lock poisoned");
            self.try_claim_locked(&mut state)
        };
        match claimed {
            Some(c) => {
                self.execute_claim(c, 0, cache);
                true
            }
            None => false,
        }
    }

    fn execute_claim(&self, claimed: Claimed, worker: u32, cache: &PointCache) {
        let Claimed { job, start, end } = claimed;
        let points = &job.points;
        let done = &job.done;
        let claim_started = Instant::now();
        let mut results = Vec::with_capacity(end - start);
        let mut error = None;
        let (mut hits, mut misses) = (0u64, 0u64);
        for i in start..end {
            match executor::evaluate_cached_tracked(&points[i], cache) {
                Ok((outcome, hit)) => {
                    if hit {
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                    results.push((i, outcome));
                }
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        self.metrics
            .batch_eval_ns
            .record_duration(claim_started.elapsed());
        self.metrics.claim_points.record((end - start) as u64);
        self.metrics.batches.inc();
        self.metrics.points.add((end - start) as u64);
        if let Some(t) = job.trace {
            chain_nn_obs::trace::spans().record(&chain_nn_obs::trace::Span {
                trace_id: t.trace_id,
                span_id: chain_nn_obs::trace::next_span_id(),
                parent_id: t.parent_span,
                name: self.span_name,
                start: claim_started,
                dur: claim_started.elapsed(),
                worker: Some(worker),
                points: (end - start) as u32,
            });
        }
        if error.is_some() {
            // Poison the claim edge first: no further ranges of this
            // job can be claimed while we deliver the failure.
            job.cursor.store(job.total(), Ordering::Relaxed);
        }
        // Publish progress before notifying the waiter, so queue depth
        // never counts delivered points.
        job.completed.fetch_add(end - start, Ordering::Relaxed);
        self.completed_total
            .fetch_add((end - start) as u64, Ordering::Relaxed);
        // On error the whole remaining range counts as finished so the
        // waiter's completion arithmetic still closes.
        let finished_now = end - start;
        let job_complete = {
            let mut cs = done.state.lock().expect("completion lock poisoned");
            cs.finished += finished_now;
            cs.cache_hits += hits;
            cs.cache_misses += misses;
            cs.results.append(&mut results);
            if let Some(e) = error {
                if cs.error.is_none() {
                    cs.error = Some(e);
                }
                cs.finished = cs.finished.max(cs.total);
            }
            if cs.error.is_some() || cs.finished >= cs.total {
                // Stamp the end of execution before the waiter can
                // observe completion.
                let _ = done.finished_at.set(Instant::now());
            }
            done.cv.notify_all();
            let complete = cs.finished >= cs.total && !cs.closed;
            if complete {
                cs.closed = true;
            }
            complete
        };
        if job_complete {
            self.remove_job(done);
            if done.slot == SlotOwnership::Owned {
                self.finish_job();
            }
        }
    }

    /// Drops a finished/poisoned job from the claim list.
    fn remove_job(&self, done: &Arc<Completion>) {
        let mut state = self.state.lock().expect("engine lock poisoned");
        state.jobs.retain(|job| !Arc::ptr_eq(&job.done, done));
    }
}

/// RAII reservation of one admission slot (see [`Engine::admit`]).
/// Dropping it releases the slot.
pub struct AdmissionSlot<'a> {
    engine: &'a Engine,
}

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        self.engine.finish_job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;

    fn grid(pes: Vec<usize>) -> Vec<DesignPoint> {
        SweepSpec {
            pes,
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        }
        .points()
    }

    fn with_workers<R>(
        engine: &Engine,
        cache: &PointCache,
        n: usize,
        body: impl FnOnce() -> R,
    ) -> R {
        std::thread::scope(|scope| {
            for w in 0..n {
                scope.spawn(move || engine.worker_loop_indexed(w as u32, cache));
            }
            let out = body();
            engine.begin_shutdown();
            out
        })
    }

    #[test]
    fn results_are_index_sorted_at_any_worker_count() {
        let points = grid(vec![25, 50, 100, 200, 400]);
        let reference = executor::run(&points, 1, &PointCache::new()).unwrap();
        for workers in [1, 2, 4, 16] {
            let engine = Engine::new(4, ClaimPolicy::adaptive());
            let cache = PointCache::new();
            let job = with_workers(&engine, &cache, workers, || {
                engine.submit(points.clone()).unwrap().wait().unwrap()
            });
            assert_eq!(job.outcomes, reference, "{workers} workers");
            assert_eq!(job.cache_misses, points.len() as u64);
        }
    }

    #[test]
    fn adaptive_claims_shrink_under_contention() {
        // Two open jobs, no workers: the next claim must be at most
        // CONTENDED_CLAIM points even though max is 32.
        let engine = Engine::new(4, ClaimPolicy::adaptive());
        let cache = PointCache::new();
        let big = engine
            .submit(grid((1..=20).map(|i| i * 25).collect()))
            .unwrap();
        let one = engine.submit(grid(vec![7])).unwrap();
        let before = engine.queue_depth();
        assert_eq!(before, 42);
        assert!(engine.run_one_claim(&cache));
        assert!(
            engine.queue_depth() >= before - CONTENDED_CLAIM,
            "claim exceeded the contended bound: depth {} -> {}",
            before,
            engine.queue_depth()
        );
        // Drain so the handles resolve.
        while engine.run_one_claim(&cache) {}
        big.wait().unwrap();
        one.wait().unwrap();
    }

    #[test]
    fn adaptive_claims_grow_when_one_job_owns_the_queue() {
        let engine = Engine::new(4, ClaimPolicy::adaptive());
        let cache = PointCache::new();
        let handle = engine
            .submit(grid((1..=40).map(|i| i * 25).collect()))
            .unwrap();
        assert_eq!(engine.queue_depth(), 80);
        assert!(engine.run_one_claim(&cache));
        // Sole job, one (virtual) worker: a full 32-point claim.
        assert_eq!(engine.queue_depth(), 80 - DEFAULT_MAX_CLAIM);
        while engine.run_one_claim(&cache) {}
        assert_eq!(handle.wait().unwrap().outcomes.len(), 80);
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn queue_depth_counts_points_not_jobs() {
        let engine = Engine::new(4, ClaimPolicy::Fixed(8));
        let cache = PointCache::new();
        let handle = engine
            .submit(grid((1..=16).map(|i| i * 25).collect()))
            .unwrap();
        assert_eq!(engine.queue_depth(), 32, "depth is the point backlog");
        assert!(engine.run_one_claim(&cache));
        // A nearly-done job reports what is left, not "one job".
        assert_eq!(engine.queue_depth(), 24);
        while engine.run_one_claim(&cache) {}
        assert_eq!(engine.queue_depth(), 0);
        handle.wait().unwrap();
    }

    #[test]
    fn drain_completes_partially_claimed_jobs() {
        // A job is half-claimed when shutdown begins: the drain must
        // finish the unclaimed half (no deadlock, no dropped points).
        let engine = Engine::new(4, ClaimPolicy::Fixed(8));
        let cache = PointCache::new();
        let points = grid((1..=32).map(|i| i * 25).collect());
        let handle = engine.submit(points.clone()).unwrap();
        assert!(engine.run_one_claim(&cache)); // 8 of 64 claimed+done
        engine.begin_shutdown();
        std::thread::scope(|scope| {
            for w in 0..2 {
                let (engine, cache) = (&engine, &cache);
                scope.spawn(move || engine.worker_loop_indexed(w, cache));
            }
        });
        let job = handle.wait().unwrap();
        assert_eq!(job.outcomes.len(), points.len());
        assert_eq!(engine.queue_depth(), 0);
        // And nothing new gets in.
        assert_eq!(
            engine.submit(points).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn error_poisons_the_job_and_stops_further_claims() {
        let engine = Engine::new(4, ClaimPolicy::Fixed(2));
        let cache = PointCache::new();
        let mut bad = grid(vec![25, 50, 100, 200]);
        bad[1].net = "notanet".into();
        let handle = engine.submit(bad).unwrap();
        assert!(engine.run_one_claim(&cache));
        // The first claim hit the error: the job is gone from the
        // queue and no further ranges are claimable.
        assert_eq!(engine.queue_depth(), 0);
        assert!(!engine.run_one_claim(&cache));
        assert!(handle.wait().is_err());
        // The engine itself survives.
        let good = grid(vec![400]);
        let h = engine.submit(good.clone()).unwrap();
        while engine.run_one_claim(&cache) {}
        assert_eq!(h.wait().unwrap().outcomes.len(), good.len());
    }

    #[test]
    fn completed_points_reconcile_with_the_metric() {
        let registry = Registry::new();
        let engine = Engine::with_registry(4, ClaimPolicy::Fixed(3), &registry);
        let cache = PointCache::new();
        let points = grid(vec![25, 50, 100, 200]);
        let handle = engine.submit(points.clone()).unwrap();
        while engine.run_one_claim(&cache) {}
        assert_eq!(handle.wait().unwrap().outcomes.len(), points.len());
        assert_eq!(engine.completed_points(), points.len() as u64);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("sched_points_total", &[]),
            Some(points.len() as u64)
        );
        let claims = snap.histogram("sched_claim_points", &[]).unwrap();
        assert_eq!(claims.sum, points.len() as u64);
    }
}
