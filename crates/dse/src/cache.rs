//! Content-hashed memoization of point evaluations.
//!
//! The cache keys on [`DesignPoint::content_hash`] (a stable FNV-1a of
//! the point's canonical byte encoding) and verifies the full point on
//! lookup, so a 64-bit collision can never return the wrong result.
//! Overlapping or repeated sweeps against the same [`crate::Explorer`]
//! are therefore incremental: only never-seen points are evaluated.
//!
//! The table is **lock-striped**: entries are spread over
//! [`SHARD_COUNT`] independently locked shards selected by the top bits
//! of the content hash, so concurrent clients of a long-lived explorer
//! (the `chain-nn serve` daemon) do not serialize on one global mutex.
//! Hit/miss counters stay lock-free atomics.
//!
//! Inserts are also journaled per shard (the *dirty log*) so a
//! persistence layer ([`crate::persist`]) can flush exactly the entries
//! added since the last flush; [`PointCache::insert_loaded`] populates
//! the table without journaling, for entries that already live on disk.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::eval::PointOutcome;
use crate::spec::DesignPoint;

/// Number of lock stripes. 16 is plenty for the worker counts this
/// crate spawns (the executor caps at the host parallelism) while
/// keeping the per-cache footprint trivial.
pub const SHARD_COUNT: usize = 16;

/// Hit/miss counters of one cache (monotonic over the cache lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required a fresh evaluation.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from memory, in `[0, 1]`; `0.0`
    /// when no lookup has happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// One lock stripe: a bucketed hash map plus the journal of entries
/// inserted (not loaded) since the last [`PointCache::take_dirty`].
#[derive(Debug, Default)]
struct Shard {
    // Buckets per content hash; each bucket stores the full point so
    // collisions degrade to a linear probe, never a wrong answer.
    map: HashMap<u64, Vec<(DesignPoint, PointOutcome)>>,
    dirty: Vec<(DesignPoint, PointOutcome)>,
}

/// Thread-safe memo table from design points to evaluation outcomes.
#[derive(Debug)]
pub struct PointCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PointCache {
    fn default() -> Self {
        PointCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl PointCache {
    /// An empty cache.
    pub fn new() -> Self {
        PointCache::default()
    }

    /// The shard holding `key`. The FNV low bits absorb the trailing
    /// input bytes; the top bits are better mixed, so stripe on those.
    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key >> 60) as usize % SHARD_COUNT]
    }

    /// Looks up `point`, counting a hit or a miss.
    pub fn get(&self, point: &DesignPoint) -> Option<PointOutcome> {
        let key = point.content_hash();
        let shard = self.shard(key).lock().expect("cache lock poisoned");
        let found = shard
            .map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(p, _)| p == point))
            .map(|(_, outcome)| outcome.clone());
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert_impl(&self, point: &DesignPoint, outcome: PointOutcome, journal: bool) {
        let key = point.content_hash();
        let mut shard = self.shard(key).lock().expect("cache lock poisoned");
        let bucket = shard.map.entry(key).or_default();
        if !bucket.iter().any(|(p, _)| p == point) {
            bucket.push((point.clone(), outcome.clone()));
            if journal {
                shard.dirty.push((point.clone(), outcome));
            }
        }
    }

    /// Stores an outcome (idempotent; a racing duplicate insert keeps
    /// the first entry). The entry is journaled for the next
    /// [`PointCache::take_dirty`].
    pub fn insert(&self, point: &DesignPoint, outcome: PointOutcome) {
        self.insert_impl(point, outcome, true);
    }

    /// Stores an outcome that already exists on disk: same semantics as
    /// [`PointCache::insert`] but exempt from the dirty journal, so a
    /// persistence layer does not rewrite what it just loaded.
    pub fn insert_loaded(&self, point: &DesignPoint, outcome: PointOutcome) {
        self.insert_impl(point, outcome, false);
    }

    /// Drains the journal of entries inserted since the previous call
    /// (or cache creation): exactly the state a persistence layer has
    /// not yet flushed. Order follows shard order, deterministic for a
    /// serial caller but not meaningful across racing inserters.
    pub fn take_dirty(&self) -> Vec<(DesignPoint, PointOutcome)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut shard.lock().expect("cache lock poisoned").dirty);
        }
        out
    }

    /// Puts previously-drained journal entries back, so a persistence
    /// layer whose flush failed can retry later without losing them.
    /// This bypasses [`PointCache::insert`] deliberately: the entries
    /// are already in the map, and `insert`'s duplicate check would
    /// silently skip re-journaling them.
    pub fn restore_dirty(&self, entries: Vec<(DesignPoint, PointOutcome)>) {
        for (point, outcome) in entries {
            let key = point.content_hash();
            self.shard(key)
                .lock()
                .expect("cache lock poisoned")
                .dirty
                .push((point, outcome));
        }
    }

    /// Every cached `(point, outcome)` pair, sorted by the point's
    /// canonical byte encoding so the listing is deterministic
    /// regardless of insertion order or shard layout. This is what the
    /// daemon's `frontier` request ranges over.
    pub fn entries(&self) -> Vec<(DesignPoint, PointOutcome)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache lock poisoned");
            for bucket in shard.map.values() {
                out.extend(bucket.iter().cloned());
            }
        }
        out.sort_by_cached_key(|(point, _)| point.canonical_bytes());
        out
    }

    /// Number of distinct points cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache lock poisoned")
                    .map
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PointOutcome;

    fn outcome(tag: &str) -> PointOutcome {
        PointOutcome::Infeasible(tag.to_owned())
    }

    #[test]
    fn miss_then_hit() {
        let cache = PointCache::new();
        let p = DesignPoint::paper_alexnet();
        assert!(cache.get(&p).is_none());
        cache.insert(&p, outcome("a"));
        assert_eq!(cache.get(&p), Some(outcome("a")));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_points_do_not_alias() {
        let cache = PointCache::new();
        let a = DesignPoint::paper_alexnet();
        let b = DesignPoint {
            pes: 288,
            ..a.clone()
        };
        cache.insert(&a, outcome("a"));
        cache.insert(&b, outcome("b"));
        assert_eq!(cache.get(&a), Some(outcome("a")));
        assert_eq!(cache.get(&b), Some(outcome("b")));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let cache = PointCache::new();
        let p = DesignPoint::paper_alexnet();
        cache.insert(&p, outcome("first"));
        cache.insert(&p, outcome("second"));
        assert_eq!(cache.get(&p), Some(outcome("first")));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn entries_span_shards_and_sort_canonically() {
        let cache = PointCache::new();
        let base = DesignPoint::paper_alexnet();
        // Enough distinct points that multiple stripes are populated.
        for pes in (64..=1024).step_by(64) {
            let p = DesignPoint {
                pes,
                ..base.clone()
            };
            cache.insert(&p, outcome(&format!("{pes}")));
        }
        let entries = cache.entries();
        assert_eq!(entries.len(), cache.len());
        assert_eq!(entries.len(), 16);
        let keys: Vec<Vec<u8>> = entries.iter().map(|(p, _)| p.canonical_bytes()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "entries() must be canonically ordered");
        // Distinct stripes really are in use (not everything on one lock).
        let stripes: std::collections::HashSet<usize> = entries
            .iter()
            .map(|(p, _)| (p.content_hash() >> 60) as usize % SHARD_COUNT)
            .collect();
        assert!(stripes.len() > 1, "all points landed on one shard");
    }

    #[test]
    fn dirty_log_tracks_only_new_unflushed_inserts() {
        let cache = PointCache::new();
        let a = DesignPoint::paper_alexnet();
        let b = DesignPoint {
            pes: 288,
            ..a.clone()
        };
        let c = DesignPoint {
            pes: 144,
            ..a.clone()
        };
        cache.insert_loaded(&a, outcome("loaded"));
        cache.insert(&b, outcome("fresh"));
        cache.insert(&b, outcome("dup")); // duplicate: not re-journaled
        let dirty = cache.take_dirty();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, b);
        // Drained: the journal starts empty again.
        assert!(cache.take_dirty().is_empty());
        cache.insert(&c, outcome("later"));
        assert_eq!(cache.take_dirty().len(), 1);
        // Loaded + inserted entries are all retrievable regardless.
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&a), Some(outcome("loaded")));
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let stats = CacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }
}
