//! Content-hashed memoization of point evaluations.
//!
//! The cache keys on [`DesignPoint::content_hash`] (a stable FNV-1a of
//! the point's canonical byte encoding) and verifies the full point on
//! lookup, so a 64-bit collision can never return the wrong result.
//! Overlapping or repeated sweeps against the same [`crate::Explorer`]
//! are therefore incremental: only never-seen points are evaluated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::eval::PointOutcome;
use crate::spec::DesignPoint;

/// Hit/miss counters of one cache (monotonic over the cache lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required a fresh evaluation.
    pub misses: u64,
}

/// Thread-safe memo table from design points to evaluation outcomes.
#[derive(Debug, Default)]
pub struct PointCache {
    // Buckets per content hash; each bucket stores the full point so
    // collisions degrade to a linear probe, never a wrong answer.
    map: Mutex<HashMap<u64, Vec<(DesignPoint, PointOutcome)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PointCache {
    /// An empty cache.
    pub fn new() -> Self {
        PointCache::default()
    }

    /// Looks up `point`, counting a hit or a miss.
    pub fn get(&self, point: &DesignPoint) -> Option<PointOutcome> {
        let key = point.content_hash();
        let map = self.map.lock().expect("cache lock poisoned");
        let found = map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(p, _)| p == point))
            .map(|(_, outcome)| outcome.clone());
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an outcome (idempotent; a racing duplicate insert keeps
    /// the first entry).
    pub fn insert(&self, point: &DesignPoint, outcome: PointOutcome) {
        let key = point.content_hash();
        let mut map = self.map.lock().expect("cache lock poisoned");
        let bucket = map.entry(key).or_default();
        if !bucket.iter().any(|(p, _)| p == point) {
            bucket.push((point.clone(), outcome));
        }
    }

    /// Number of distinct points cached.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("cache lock poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PointOutcome;

    fn outcome(tag: &str) -> PointOutcome {
        PointOutcome::Infeasible(tag.to_owned())
    }

    #[test]
    fn miss_then_hit() {
        let cache = PointCache::new();
        let p = DesignPoint::paper_alexnet();
        assert!(cache.get(&p).is_none());
        cache.insert(&p, outcome("a"));
        assert_eq!(cache.get(&p), Some(outcome("a")));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_points_do_not_alias() {
        let cache = PointCache::new();
        let a = DesignPoint::paper_alexnet();
        let b = DesignPoint {
            pes: 288,
            ..a.clone()
        };
        cache.insert(&a, outcome("a"));
        cache.insert(&b, outcome("b"));
        assert_eq!(cache.get(&a), Some(outcome("a")));
        assert_eq!(cache.get(&b), Some(outcome("b")));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let cache = PointCache::new();
        let p = DesignPoint::paper_alexnet();
        cache.insert(&p, outcome("first"));
        cache.insert(&p, outcome("second"));
        assert_eq!(cache.get(&p), Some(outcome("first")));
        assert_eq!(cache.len(), 1);
    }
}
