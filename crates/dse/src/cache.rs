//! Content-hashed memoization of point evaluations.
//!
//! The cache keys on [`DesignPoint::content_hash`] (a stable FNV-1a of
//! the point's canonical byte encoding) and verifies the full point on
//! lookup, so a 64-bit collision can never return the wrong result.
//! Overlapping or repeated sweeps against the same [`crate::Explorer`]
//! are therefore incremental: only never-seen points are evaluated.
//!
//! The table is **lock-striped**: entries are spread over
//! [`SHARD_COUNT`] independently locked shards selected by the top bits
//! of the content hash, so concurrent clients of a long-lived explorer
//! (the `chain-nn serve` daemon) do not serialize on one global mutex.
//! Hit/miss counters stay lock-free atomics.
//!
//! Inserts are also journaled per shard (the *dirty log*) so a
//! persistence layer ([`crate::persist`]) can flush exactly the entries
//! added since the last flush; [`PointCache::insert_loaded`] populates
//! the table without journaling, for entries that already live on disk.
//!
//! The cache is grow-only by default — correct for sweeps and fine for
//! grids up to ~10⁷ points, but a month-long daemon lifetime wants a
//! ceiling. [`PointCache::bounded`] adds an **optional capacity bound**
//! with shard-local FIFO eviction: when a shard exceeds its share of
//! the bound, the oldest *clean* entry (one not sitting in the dirty
//! journal, i.e. already flushed to disk or loaded from it) is dropped.
//! Dirty entries are never evicted — an unflushed evaluation must
//! reach the snapshot file first — so with persistence attached an
//! evicted point is only ever re-*loaded* or re-evaluated, never lost.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::eval::PointOutcome;
use crate::spec::DesignPoint;

/// Number of lock stripes. 16 is plenty for the worker counts this
/// crate spawns (the executor caps at the host parallelism) while
/// keeping the per-cache footprint trivial.
pub const SHARD_COUNT: usize = 16;

/// Hit/miss counters of one cache (monotonic over the cache lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required a fresh evaluation.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from memory, in `[0, 1]`; `0.0`
    /// when no lookup has happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// One lock stripe: a bucketed hash map plus the journal of entries
/// inserted (not loaded) since the last [`PointCache::take_dirty`].
#[derive(Debug, Default)]
struct Shard {
    // Buckets per content hash; each bucket stores the full point so
    // collisions degrade to a linear probe, never a wrong answer.
    map: HashMap<u64, Vec<(DesignPoint, PointOutcome)>>,
    dirty: Vec<(DesignPoint, PointOutcome)>,
    // Content hashes of the journaled entries, mirrored from `dirty`
    // so the eviction scan is O(1) per candidate instead of a nested
    // point-equality walk under the shard lock. A hash collision only
    // makes a clean entry *look* dirty — eviction skips it, which is
    // conservative, never wrong.
    dirty_hashes: HashSet<u64>,
    // Insertion order (FIFO) for the optional capacity bound; one
    // entry per stored point, removed on eviction.
    order: VecDeque<(u64, DesignPoint)>,
    // Points stored in this shard (map values summed), kept O(1).
    count: usize,
}

impl Shard {
    /// Evicts clean entries FIFO until the shard holds at most
    /// `per_shard_cap` points (or only dirty entries remain). Returns
    /// how many entries were dropped.
    fn evict_to(&mut self, per_shard_cap: usize) -> u64 {
        let mut evicted = 0u64;
        while self.count > per_shard_cap {
            let Some(pos) = self
                .order
                .iter()
                .position(|(key, _)| !self.dirty_hashes.contains(key))
            else {
                break; // everything left is unflushed; never drop it
            };
            let (key, point) = self.order.remove(pos).expect("position is in range");
            if let Some(bucket) = self.map.get_mut(&key) {
                bucket.retain(|(p, _)| *p != point);
                if bucket.is_empty() {
                    self.map.remove(&key);
                }
            }
            self.count -= 1;
            evicted += 1;
        }
        evicted
    }
}

/// Thread-safe memo table from design points to evaluation outcomes.
///
/// # Example
///
/// ```
/// use chain_nn_dse::{DesignPoint, PointCache, PointOutcome};
///
/// let cache = PointCache::new();
/// let point = DesignPoint::paper_alexnet();
/// assert!(cache.get(&point).is_none()); // one counted miss
/// cache.insert(&point, PointOutcome::Infeasible("demo".into()));
/// assert!(cache.get(&point).is_some()); // one counted hit
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// // Everything inserted since the last flush is journaled:
/// assert_eq!(cache.take_dirty().len(), 1);
/// ```
#[derive(Debug)]
pub struct PointCache {
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Per-shard point bound derived from the global capacity; `None`
    /// means grow-only (the default).
    per_shard_cap: Option<usize>,
}

impl Default for PointCache {
    fn default() -> Self {
        PointCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            per_shard_cap: None,
        }
    }
}

impl PointCache {
    /// An empty, unbounded (grow-only) cache.
    pub fn new() -> Self {
        PointCache::default()
    }

    /// An empty cache bounded to roughly `capacity` points. The bound
    /// is enforced per shard (`capacity / 16`, rounded up), so the
    /// global count can overshoot by at most one point per shard when
    /// the hash spread is uneven. A zero capacity is treated as 1 per
    /// shard — an unbounded cache is spelled [`PointCache::new`].
    pub fn bounded(capacity: usize) -> Self {
        PointCache {
            per_shard_cap: Some(capacity.div_ceil(SHARD_COUNT).max(1)),
            ..PointCache::default()
        }
    }

    /// Entries dropped by the capacity bound so far (0 when unbounded).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The shard holding `key`. The FNV low bits absorb the trailing
    /// input bytes; the top bits are better mixed, so stripe on those.
    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key >> 60) as usize % SHARD_COUNT]
    }

    /// Looks up `point`, counting a hit or a miss.
    pub fn get(&self, point: &DesignPoint) -> Option<PointOutcome> {
        let key = point.content_hash();
        let shard = self.shard(key).lock().expect("cache lock poisoned");
        let found = shard
            .map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(p, _)| p == point))
            .map(|(_, outcome)| outcome.clone());
        drop(shard);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Looks up `point`, counting a hit when present but *nothing* when
    /// absent. This is the serving fast path's probe: on a miss the
    /// point goes on to a scheduled evaluation whose own [`get`]
    /// records the authoritative miss, and counting it here too would
    /// double it.
    ///
    /// [`get`]: PointCache::get
    pub fn probe(&self, point: &DesignPoint) -> Option<PointOutcome> {
        let key = point.content_hash();
        let shard = self.shard(key).lock().expect("cache lock poisoned");
        let found = shard
            .map
            .get(&key)
            .and_then(|bucket| bucket.iter().find(|(p, _)| p == point))
            .map(|(_, outcome)| outcome.clone());
        drop(shard);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    fn insert_impl(&self, point: &DesignPoint, outcome: PointOutcome, journal: bool) -> bool {
        let key = point.content_hash();
        let mut shard = self.shard(key).lock().expect("cache lock poisoned");
        let bucket = shard.map.entry(key).or_default();
        if bucket.iter().any(|(p, _)| p == point) {
            return false;
        }
        bucket.push((point.clone(), outcome.clone()));
        shard.order.push_back((key, point.clone()));
        shard.count += 1;
        if journal {
            shard.dirty.push((point.clone(), outcome));
            shard.dirty_hashes.insert(key);
        }
        if let Some(cap) = self.per_shard_cap {
            let evicted = shard.evict_to(cap);
            if evicted > 0 {
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        true
    }

    /// Stores an outcome (idempotent; a racing duplicate insert keeps
    /// the first entry). The entry is journaled for the next
    /// [`PointCache::take_dirty`].
    pub fn insert(&self, point: &DesignPoint, outcome: PointOutcome) {
        self.insert_impl(point, outcome, true);
    }

    /// Stores an outcome that already exists on disk: same semantics as
    /// [`PointCache::insert`] but exempt from the dirty journal, so a
    /// persistence layer does not rewrite what it just loaded. Returns
    /// whether the point was new — `false` flags an on-disk duplicate,
    /// which the loader counts toward the compaction threshold.
    pub fn insert_loaded(&self, point: &DesignPoint, outcome: PointOutcome) -> bool {
        self.insert_impl(point, outcome, false)
    }

    /// Drains the journal of entries inserted since the previous call
    /// (or cache creation): exactly the state a persistence layer has
    /// not yet flushed. Order follows shard order, deterministic for a
    /// serial caller but not meaningful across racing inserters.
    pub fn take_dirty(&self) -> Vec<(DesignPoint, PointOutcome)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache lock poisoned");
            out.append(&mut shard.dirty);
            shard.dirty_hashes.clear();
        }
        out
    }

    /// Puts previously-drained journal entries back, so a persistence
    /// layer whose flush failed can retry later without losing them.
    /// This bypasses [`PointCache::insert`] deliberately: the entries
    /// are already in the map, and `insert`'s duplicate check would
    /// silently skip re-journaling them.
    pub fn restore_dirty(&self, entries: Vec<(DesignPoint, PointOutcome)>) {
        for (point, outcome) in entries {
            let key = point.content_hash();
            let mut shard = self.shard(key).lock().expect("cache lock poisoned");
            shard.dirty.push((point, outcome));
            shard.dirty_hashes.insert(key);
        }
    }

    /// Every cached `(point, outcome)` pair, sorted by the point's
    /// canonical byte encoding so the listing is deterministic
    /// regardless of insertion order or shard layout. This is what the
    /// daemon's `frontier` request ranges over.
    pub fn entries(&self) -> Vec<(DesignPoint, PointOutcome)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("cache lock poisoned");
            for bucket in shard.map.values() {
                out.extend(bucket.iter().cloned());
            }
        }
        out.sort_by_cached_key(|(point, _)| point.canonical_bytes());
        out
    }

    /// Number of distinct points cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock poisoned").count)
            .sum()
    }

    /// Whether the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::PointOutcome;

    fn outcome(tag: &str) -> PointOutcome {
        PointOutcome::Infeasible(tag.to_owned())
    }

    #[test]
    fn miss_then_hit() {
        let cache = PointCache::new();
        let p = DesignPoint::paper_alexnet();
        assert!(cache.get(&p).is_none());
        cache.insert(&p, outcome("a"));
        assert_eq!(cache.get(&p), Some(outcome("a")));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_points_do_not_alias() {
        let cache = PointCache::new();
        let a = DesignPoint::paper_alexnet();
        let b = DesignPoint {
            pes: 288,
            ..a.clone()
        };
        cache.insert(&a, outcome("a"));
        cache.insert(&b, outcome("b"));
        assert_eq!(cache.get(&a), Some(outcome("a")));
        assert_eq!(cache.get(&b), Some(outcome("b")));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_first() {
        let cache = PointCache::new();
        let p = DesignPoint::paper_alexnet();
        cache.insert(&p, outcome("first"));
        cache.insert(&p, outcome("second"));
        assert_eq!(cache.get(&p), Some(outcome("first")));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn entries_span_shards_and_sort_canonically() {
        let cache = PointCache::new();
        let base = DesignPoint::paper_alexnet();
        // Enough distinct points that multiple stripes are populated.
        for pes in (64..=1024).step_by(64) {
            let p = DesignPoint {
                pes,
                ..base.clone()
            };
            cache.insert(&p, outcome(&format!("{pes}")));
        }
        let entries = cache.entries();
        assert_eq!(entries.len(), cache.len());
        assert_eq!(entries.len(), 16);
        let keys: Vec<Vec<u8>> = entries.iter().map(|(p, _)| p.canonical_bytes()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "entries() must be canonically ordered");
        // Distinct stripes really are in use (not everything on one lock).
        let stripes: std::collections::HashSet<usize> = entries
            .iter()
            .map(|(p, _)| (p.content_hash() >> 60) as usize % SHARD_COUNT)
            .collect();
        assert!(stripes.len() > 1, "all points landed on one shard");
    }

    #[test]
    fn dirty_log_tracks_only_new_unflushed_inserts() {
        let cache = PointCache::new();
        let a = DesignPoint::paper_alexnet();
        let b = DesignPoint {
            pes: 288,
            ..a.clone()
        };
        let c = DesignPoint {
            pes: 144,
            ..a.clone()
        };
        cache.insert_loaded(&a, outcome("loaded"));
        cache.insert(&b, outcome("fresh"));
        cache.insert(&b, outcome("dup")); // duplicate: not re-journaled
        let dirty = cache.take_dirty();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, b);
        // Drained: the journal starts empty again.
        assert!(cache.take_dirty().is_empty());
        cache.insert(&c, outcome("later"));
        assert_eq!(cache.take_dirty().len(), 1);
        // Loaded + inserted entries are all retrievable regardless.
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&a), Some(outcome("loaded")));
    }

    #[test]
    fn bounded_cache_evicts_clean_entries_fifo() {
        // Capacity 16 = 1 per shard: any shard receiving a second clean
        // entry must drop its oldest one.
        let cache = PointCache::bounded(SHARD_COUNT);
        let base = DesignPoint::paper_alexnet();
        let points: Vec<DesignPoint> = (0..64)
            .map(|i| DesignPoint {
                pes: 121 + i,
                ..base.clone()
            })
            .collect();
        for p in &points {
            cache.insert_loaded(p, outcome("clean"));
        }
        assert!(cache.len() <= SHARD_COUNT, "len {}", cache.len());
        assert_eq!(cache.evictions(), 64 - cache.len() as u64);
        // Within each shard the survivor is the newest entry (FIFO):
        // every cached point must have no same-shard successor.
        for (i, p) in points.iter().enumerate() {
            if cache.get(p).is_some() {
                let shard = (p.content_hash() >> 60) as usize % SHARD_COUNT;
                let newer_in_shard = points[i + 1..]
                    .iter()
                    .any(|q| (q.content_hash() >> 60) as usize % SHARD_COUNT == shard);
                assert!(!newer_in_shard, "evicted out of FIFO order at {i}");
            }
        }
    }

    #[test]
    fn bounded_cache_never_evicts_dirty_entries() {
        let cache = PointCache::bounded(SHARD_COUNT);
        let base = DesignPoint::paper_alexnet();
        let points: Vec<DesignPoint> = (0..48)
            .map(|i| DesignPoint {
                pes: 121 + i,
                ..base.clone()
            })
            .collect();
        // All journaled (unflushed): nothing may be dropped despite the
        // bound being exceeded threefold.
        for p in &points {
            cache.insert(p, outcome("dirty"));
        }
        assert_eq!(cache.len(), points.len());
        assert_eq!(cache.evictions(), 0);
        // Flushing makes them clean; subsequent inserts shrink the
        // cache back toward the bound, shard by shard.
        let flushed = cache.take_dirty();
        assert_eq!(flushed.len(), points.len());
        for i in 0..16 {
            let extra = DesignPoint {
                pes: 2048 + i,
                ..base.clone()
            };
            cache.insert_loaded(&extra, outcome("extra"));
        }
        assert!(cache.evictions() > 0);
        assert!(cache.len() < points.len() + 16);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = PointCache::new();
        let base = DesignPoint::paper_alexnet();
        for i in 0..256 {
            let p = DesignPoint {
                pes: 121 + i,
                ..base.clone()
            };
            cache.insert_loaded(&p, outcome("x"));
        }
        assert_eq!(cache.len(), 256);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn hit_rate_is_hits_over_lookups() {
        let stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        let stats = CacheStats { hits: 3, misses: 1 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }
}
