//! Signed Q-format descriptors for 16-bit words.

use std::error::Error;
use std::fmt;

use crate::Fix16;

/// Total word width of the Chain-NN datapath operands, in bits.
pub const WORD_BITS: u32 = 16;

/// Rounding behaviour applied when converting `f32` to fixed point.
///
/// The paper's float-to-fix simulator does not document its rounding; we
/// default to round-to-nearest (ties away from zero, the behaviour of
/// `f32::round`), and expose truncation variants for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoundMode {
    /// Round to the nearest representable value, ties away from zero.
    #[default]
    Nearest,
    /// Round toward zero (drop fractional bits of the magnitude).
    TowardZero,
    /// Round toward negative infinity (arithmetic shift behaviour).
    Floor,
}

/// Error returned when constructing an invalid [`QFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QFormatError {
    frac_bits: u32,
}

impl fmt::Display for QFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fractional bit count {} exceeds {} available non-sign bits",
            self.frac_bits,
            WORD_BITS - 1
        )
    }
}

impl Error for QFormatError {}

/// A signed 16-bit Q-format: 1 sign bit, `15 - frac_bits` integer bits and
/// `frac_bits` fractional bits (Q`m`.`n` with `m + n = 15`).
///
/// A `QFormat` is the *interpretation* of a [`Fix16`] word; the word itself
/// is format-free, exactly like the bits on the hardware ifmap channel.
///
/// # Example
///
/// ```
/// use chain_nn_fixed::QFormat;
/// let fmt = QFormat::new(8)?;
/// assert_eq!(fmt.frac_bits(), 8);
/// assert_eq!(fmt.int_bits(), 7);
/// assert!((fmt.max_value() - 127.99609375).abs() < 1e-9);
/// # Ok::<(), chain_nn_fixed::QFormatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    frac_bits: u32,
    round: RoundMode,
}

impl Default for QFormat {
    /// Q7.8 — a balanced default for CNN activations.
    fn default() -> Self {
        QFormat::new(8).expect("8 fractional bits always valid")
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits)
    }
}

impl QFormat {
    /// Creates a Q-format with `frac_bits` fractional bits and
    /// round-to-nearest conversion.
    ///
    /// # Errors
    ///
    /// Returns [`QFormatError`] if `frac_bits > 15` (no room for the sign
    /// bit).
    pub fn new(frac_bits: u32) -> Result<Self, QFormatError> {
        if frac_bits > WORD_BITS - 1 {
            return Err(QFormatError { frac_bits });
        }
        Ok(QFormat {
            frac_bits,
            round: RoundMode::Nearest,
        })
    }

    /// Returns a copy of this format using rounding mode `round`.
    #[must_use]
    pub fn with_round_mode(mut self, round: RoundMode) -> Self {
        self.round = round;
        self
    }

    /// Number of fractional bits `n` in Q`m`.`n`.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Number of integer (non-sign) bits `m` in Q`m`.`n`.
    pub fn int_bits(&self) -> u32 {
        WORD_BITS - 1 - self.frac_bits
    }

    /// The rounding mode used by [`QFormat::quantize`].
    pub fn round_mode(&self) -> RoundMode {
        self.round
    }

    /// The weight of one least-significant bit: `2^-frac_bits`.
    pub fn lsb(&self) -> f32 {
        (self.frac_bits as i32)
            .checked_neg()
            .map_or(1.0, |e| 2f32.powi(e))
    }

    /// Largest representable value, `(2^15 - 1) · 2^-n`.
    pub fn max_value(&self) -> f32 {
        i16::MAX as f32 * self.lsb()
    }

    /// Smallest (most negative) representable value, `-2^15 · 2^-n`.
    pub fn min_value(&self) -> f32 {
        i16::MIN as f32 * self.lsb()
    }

    /// Converts `x` to fixed point, saturating at the format limits.
    ///
    /// NaN converts to zero (a deliberate, documented policy: the hardware
    /// never sees NaN, so any mapping is acceptable and zero is inert).
    pub fn quantize(&self, x: f32) -> Fix16 {
        if x.is_nan() {
            return Fix16::ZERO;
        }
        let scaled = x as f64 * f64::from(self.lsb()).recip();
        let rounded = match self.round {
            RoundMode::Nearest => scaled.round(),
            RoundMode::TowardZero => scaled.trunc(),
            RoundMode::Floor => scaled.floor(),
        };
        let clamped = rounded.clamp(i16::MIN as f64, i16::MAX as f64);
        Fix16::from_raw(clamped as i16)
    }

    /// Converts a fixed-point word back to `f32` under this format.
    pub fn dequantize(&self, x: Fix16) -> f32 {
        x.raw() as f32 * self.lsb()
    }

    /// Quantization followed by dequantization — the value the hardware
    /// actually computes with.
    pub fn roundtrip(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// Picks the Q-format with the most fractional bits that still
    /// represents every value in `data` without saturating.
    ///
    /// This is the per-layer range analysis step of the paper's
    /// float-to-fix flow. An empty slice yields the maximum-precision
    /// format Q0.15.
    ///
    /// # Example
    ///
    /// ```
    /// use chain_nn_fixed::QFormat;
    /// let fmt = QFormat::fit(&[3.7, -1.2, 0.05]);
    /// assert_eq!(fmt.int_bits(), 2); // needs ±3.7 → 2 integer bits
    /// ```
    pub fn fit(data: &[f32]) -> QFormat {
        let max_abs = data
            .iter()
            .filter(|x| x.is_finite())
            .fold(0f32, |m, &x| m.max(x.abs()));
        QFormat::fit_range(max_abs)
    }

    /// Like [`QFormat::fit`], but from a precomputed magnitude bound.
    pub fn fit_range(max_abs: f32) -> QFormat {
        let mut frac = WORD_BITS - 1;
        // Reduce precision until max_abs fits. `max_value` grows by 2x per
        // dropped fractional bit.
        while frac > 0 {
            let candidate = QFormat {
                frac_bits: frac,
                round: RoundMode::Nearest,
            };
            if max_abs <= candidate.max_value() {
                return candidate;
            }
            frac -= 1;
        }
        QFormat {
            frac_bits: 0,
            round: RoundMode::Nearest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_bounds() {
        assert!(QFormat::new(15).is_ok());
        let err = QFormat::new(16).unwrap_err();
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn display_format() {
        assert_eq!(QFormat::new(8).unwrap().to_string(), "Q7.8");
        assert_eq!(QFormat::new(0).unwrap().to_string(), "Q15.0");
    }

    #[test]
    fn quantize_exact_values() {
        let fmt = QFormat::new(8).unwrap();
        assert_eq!(fmt.quantize(1.0).raw(), 256);
        assert_eq!(fmt.quantize(-1.0).raw(), -256);
        assert_eq!(fmt.quantize(0.0).raw(), 0);
        assert_eq!(fmt.quantize(0.00390625).raw(), 1); // one LSB
    }

    #[test]
    fn quantize_saturates() {
        let fmt = QFormat::new(8).unwrap();
        assert_eq!(fmt.quantize(1e9).raw(), i16::MAX);
        assert_eq!(fmt.quantize(-1e9).raw(), i16::MIN);
        assert_eq!(fmt.quantize(f32::INFINITY).raw(), i16::MAX);
        assert_eq!(fmt.quantize(f32::NEG_INFINITY).raw(), i16::MIN);
        assert_eq!(fmt.quantize(f32::NAN).raw(), 0);
    }

    #[test]
    fn round_modes_differ() {
        let near = QFormat::new(0).unwrap();
        let zero = near.with_round_mode(RoundMode::TowardZero);
        let floor = near.with_round_mode(RoundMode::Floor);
        assert_eq!(near.quantize(1.5).raw(), 2);
        assert_eq!(zero.quantize(1.5).raw(), 1);
        assert_eq!(floor.quantize(-1.5).raw(), -2);
        assert_eq!(zero.quantize(-1.5).raw(), -1);
    }

    #[test]
    fn fit_picks_tightest_format() {
        // 0.9 fits in Q0.15
        assert_eq!(QFormat::fit(&[0.9]).frac_bits(), 15);
        // 1.5 needs 1 integer bit
        assert_eq!(QFormat::fit(&[1.5]).frac_bits(), 14);
        // 100 needs 7 integer bits → Q7.8
        assert_eq!(QFormat::fit(&[100.0]).frac_bits(), 8);
        // empty → max precision
        assert_eq!(QFormat::fit(&[]).frac_bits(), 15);
        // non-finite values are ignored
        assert_eq!(QFormat::fit(&[f32::NAN, 0.5]).frac_bits(), 15);
    }

    #[test]
    fn lsb_and_limits_consistent() {
        for frac in 0..=15 {
            let fmt = QFormat::new(frac).unwrap();
            let max = fmt.max_value();
            assert_eq!(fmt.quantize(max).raw(), i16::MAX);
            // One LSB above max saturates rather than wraps.
            assert_eq!(fmt.quantize(max + fmt.lsb()).raw(), i16::MAX);
        }
    }
}
