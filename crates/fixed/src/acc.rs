//! The 32-bit partial-sum accumulator of the psum channel.

use std::fmt;
use std::ops::Add;

use crate::Fix16;

/// Overflow policy of the accumulator adder.
///
/// The paper does not state whether the psum adder saturates; real silicon
/// of this class typically wraps (cheapest) and relies on the quantizer's
/// range analysis to keep sums in range. Both policies are provided so the
/// quantization study can measure the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OverflowMode {
    /// Two's-complement wrapping — the hardware default.
    #[default]
    Wrapping,
    /// Saturate at `i32::MIN`/`i32::MAX`.
    Saturating,
}

/// A 32-bit partial sum as carried on the PSum channel between PEs.
///
/// # Example
///
/// ```
/// use chain_nn_fixed::{Acc32, Fix16};
/// let acc = Acc32::ZERO
///     .mac(Fix16::from_raw(100), Fix16::from_raw(30))
///     .mac(Fix16::from_raw(-5), Fix16::from_raw(7));
/// assert_eq!(acc.raw(), 100 * 30 - 35);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Acc32(i32);

impl Acc32 {
    /// The additive identity — the value injected at a primitive's head.
    pub const ZERO: Acc32 = Acc32(0);

    /// Wraps a raw 32-bit two's-complement accumulator value.
    pub const fn from_raw(raw: i32) -> Acc32 {
        Acc32(raw)
    }

    /// The underlying two's-complement value.
    pub const fn raw(self) -> i32 {
        self.0
    }

    /// One multiply-accumulate step with wrapping accumulation — exactly
    /// what one PE contributes per cycle.
    #[must_use]
    pub const fn mac(self, a: Fix16, b: Fix16) -> Acc32 {
        Acc32(self.0.wrapping_add(a.widening_mul(b)))
    }

    /// One multiply-accumulate step under an explicit overflow policy.
    #[must_use]
    pub fn mac_with(self, a: Fix16, b: Fix16, mode: OverflowMode) -> Acc32 {
        let p = a.widening_mul(b);
        match mode {
            OverflowMode::Wrapping => Acc32(self.0.wrapping_add(p)),
            OverflowMode::Saturating => Acc32(self.0.saturating_add(p)),
        }
    }

    /// Interprets the accumulator as a real number with `frac_bits`
    /// fractional bits (products of two Q`m`.`n` words carry `2n`).
    pub fn to_f32(self, frac_bits: u32) -> f32 {
        self.0 as f64 as f32 * 2f32.powi(-(frac_bits as i32))
    }

    /// Narrows to a 16-bit word, arithmetic-shifting right by `shift` and
    /// saturating — the write-back converter between the psum channel and
    /// oMemory.
    ///
    /// # Panics
    ///
    /// Panics if `shift >= 32`.
    pub fn narrow(self, shift: u32) -> Fix16 {
        assert!(shift < 32, "narrowing shift {shift} out of range");
        let shifted = self.0 >> shift;
        Fix16::from_raw(shifted.clamp(i16::MIN as i32, i16::MAX as i32) as i16)
    }
}

impl fmt::Display for Acc32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0 as u32)
    }
}

impl From<i32> for Acc32 {
    fn from(raw: i32) -> Acc32 {
        Acc32(raw)
    }
}

impl From<Acc32> for i32 {
    fn from(x: Acc32) -> i32 {
        x.0
    }
}

impl From<Fix16> for Acc32 {
    /// Sign-extends a 16-bit word into the accumulator.
    fn from(x: Fix16) -> Acc32 {
        Acc32(i32::from(x))
    }
}

/// Wrapping addition, matching the 32-bit psum adder.
impl Add for Acc32 {
    type Output = Acc32;
    fn add(self, rhs: Acc32) -> Acc32 {
        Acc32(self.0.wrapping_add(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_accumulates() {
        let mut acc = Acc32::ZERO;
        for i in 1..=10i16 {
            acc = acc.mac(Fix16::from_raw(i), Fix16::from_raw(i));
        }
        assert_eq!(acc.raw(), (1..=10i32).map(|i| i * i).sum::<i32>());
    }

    #[test]
    fn saturating_vs_wrapping() {
        let near_max = Acc32::from_raw(i32::MAX - 10);
        let a = Fix16::from_raw(100);
        let b = Fix16::from_raw(100);
        let wrapped = near_max.mac_with(a, b, OverflowMode::Wrapping);
        let saturated = near_max.mac_with(a, b, OverflowMode::Saturating);
        assert!(wrapped.raw() < 0, "wrapping overflow goes negative");
        assert_eq!(saturated.raw(), i32::MAX);
    }

    #[test]
    fn narrow_saturates_and_shifts() {
        assert_eq!(Acc32::from_raw(1 << 20).narrow(8).raw(), 1 << 12);
        assert_eq!(Acc32::from_raw(i32::MAX).narrow(0).raw(), i16::MAX);
        assert_eq!(Acc32::from_raw(i32::MIN).narrow(0).raw(), i16::MIN);
        assert_eq!(Acc32::from_raw(-256).narrow(8).raw(), -1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn narrow_rejects_bad_shift() {
        let _ = Acc32::ZERO.narrow(32);
    }

    #[test]
    fn to_f32_scaling() {
        let acc = Acc32::from_raw(1 << 16);
        assert_eq!(acc.to_f32(16), 1.0);
        assert_eq!(acc.to_f32(0), 65536.0);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Acc32::from_raw(-1).to_string(), "0xffffffff");
    }
}
