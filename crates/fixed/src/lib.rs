//! 16-bit fixed-point arithmetic and float→fixed quantization.
//!
//! Chain-NN's datapath is a 16-bit fixed-point multiply-accumulate (paper
//! §IV.B: "each PE is in charge of a 16-bit fixed-point MAC operation").
//! The paper verifies the RTL against a "float-point-to-fix-point simulator"
//! (§V.A); this crate is that simulator's numerical core:
//!
//! * [`QFormat`] — a signed Q-format (integer/fractional bit split) for
//!   16-bit words, with saturating conversion from `f32` and range fitting.
//! * [`Fix16`] — a 16-bit fixed-point word as carried on the chain's ifmap
//!   and kernel channels.
//! * [`Acc32`] — the 32-bit partial-sum accumulator flowing along the psum
//!   channel, with both wrapping (hardware-exact) and saturating modes.
//! * [`quantize_slice`]/[`dequantize_slice`] — bulk conversions.
//! * [`error`] — SQNR / MSE metrics used by the quantization study.
//!
//! # Example
//!
//! ```
//! use chain_nn_fixed::{QFormat, Fix16, Acc32};
//!
//! let fmt = QFormat::new(8).unwrap();          // Q7.8: 1 sign, 7 int, 8 frac
//! let a = fmt.quantize(1.5);
//! let b = fmt.quantize(-0.25);
//! let mut acc = Acc32::ZERO;
//! acc = acc.mac(a, b);
//! // product is in Q(2·8) = 16 fractional bits
//! let got = acc.to_f32(2 * fmt.frac_bits());
//! assert!((got - (1.5 * -0.25)).abs() < 1e-3);
//! let _ = Fix16::from_raw(42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
mod fix;
mod qformat;

pub mod error;

pub use acc::{Acc32, OverflowMode};
pub use fix::Fix16;
pub use qformat::{QFormat, QFormatError, RoundMode};

/// Quantizes a slice of `f32` values into raw 16-bit words under `fmt`.
///
/// Values outside the representable range saturate to the format limits,
/// mirroring the saturating converters commonly placed at the accelerator's
/// memory interface.
///
/// # Example
///
/// ```
/// use chain_nn_fixed::{QFormat, quantize_slice};
/// let fmt = QFormat::new(12).unwrap();
/// let q = quantize_slice(&[0.5, -0.5], fmt);
/// assert_eq!(q[0].raw(), 2048);
/// assert_eq!(q[1].raw(), -2048);
/// ```
pub fn quantize_slice(data: &[f32], fmt: QFormat) -> Vec<Fix16> {
    data.iter().map(|&x| fmt.quantize(x)).collect()
}

/// Converts a slice of fixed-point words back to `f32` under `fmt`.
///
/// # Example
///
/// ```
/// use chain_nn_fixed::{QFormat, quantize_slice, dequantize_slice};
/// let fmt = QFormat::new(10).unwrap();
/// let q = quantize_slice(&[0.25f32, 1.0], fmt);
/// let back = dequantize_slice(&q, fmt);
/// assert_eq!(back, vec![0.25, 1.0]);
/// ```
pub fn dequantize_slice(data: &[Fix16], fmt: QFormat) -> Vec<f32> {
    data.iter().map(|&x| fmt.dequantize(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_roundtrip_exact_for_representable() {
        let fmt = QFormat::new(8).unwrap();
        let xs = [0.0f32, 1.0, -1.0, 0.5, -127.996_09, 127.996_09];
        let back = dequantize_slice(&quantize_slice(&xs, fmt), fmt);
        assert_eq!(&back[..], &xs[..]);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Fix16>();
        assert_send_sync::<QFormat>();
        assert_send_sync::<Acc32>();
    }
}
