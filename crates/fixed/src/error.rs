//! Quantization-error metrics for the float-to-fix study.
//!
//! The paper validates its RTL against a float-to-fixed simulator on
//! MNIST/CIFAR-10/AlexNet/VGG-16 (§V.A). These metrics quantify the
//! float-vs-fixed gap: mean-squared error, maximum absolute error, and
//! signal-to-quantization-noise ratio (SQNR) in decibels.

/// Summary statistics of the error between a float reference and its
/// fixed-point reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Mean squared error.
    pub mse: f64,
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Signal power (mean of squared reference values).
    pub signal_power: f64,
    /// Number of samples compared.
    pub count: usize,
}

impl ErrorStats {
    /// Signal-to-quantization-noise ratio in dB; `f64::INFINITY` when the
    /// error is exactly zero, `0.0` when the signal itself is zero.
    pub fn sqnr_db(&self) -> f64 {
        if self.signal_power == 0.0 {
            return 0.0;
        }
        if self.mse == 0.0 {
            return f64::INFINITY;
        }
        10.0 * (self.signal_power / self.mse).log10()
    }
}

/// Compares a float reference against a reconstruction.
///
/// # Panics
///
/// Panics if the slices differ in length — comparing tensors of different
/// shapes is a caller bug, not a data condition.
///
/// # Example
///
/// ```
/// use chain_nn_fixed::error::compare;
/// let stats = compare(&[1.0, 2.0], &[1.0, 2.5]);
/// assert_eq!(stats.max_abs, 0.5);
/// assert_eq!(stats.count, 2);
/// ```
pub fn compare(reference: &[f32], reconstructed: &[f32]) -> ErrorStats {
    assert_eq!(
        reference.len(),
        reconstructed.len(),
        "error comparison requires equal-length slices"
    );
    if reference.is_empty() {
        return ErrorStats::default();
    }
    let n = reference.len() as f64;
    let mut sq_err = 0f64;
    let mut max_abs = 0f64;
    let mut sig = 0f64;
    for (&r, &q) in reference.iter().zip(reconstructed) {
        let e = (r as f64) - (q as f64);
        sq_err += e * e;
        max_abs = max_abs.max(e.abs());
        sig += (r as f64) * (r as f64);
    }
    ErrorStats {
        mse: sq_err / n,
        max_abs,
        signal_power: sig / n,
        count: reference.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dequantize_slice, quantize_slice, QFormat};

    #[test]
    fn zero_error_is_infinite_sqnr() {
        let s = compare(&[1.0, -2.0], &[1.0, -2.0]);
        assert_eq!(s.mse, 0.0);
        assert!(s.sqnr_db().is_infinite());
    }

    #[test]
    fn zero_signal_is_zero_sqnr() {
        let s = compare(&[0.0, 0.0], &[0.1, -0.1]);
        assert_eq!(s.sqnr_db(), 0.0);
        // The zero-signal rule wins even when the error is also zero:
        // an all-zero comparison is 0 dB, not +inf.
        let z = compare(&[0.0, 0.0], &[0.0, 0.0]);
        assert_eq!(z.mse, 0.0);
        assert_eq!(z.signal_power, 0.0);
        assert_eq!(z.sqnr_db(), 0.0);
        // And an empty comparison (signal power 0 by default) too.
        assert_eq!(ErrorStats::default().sqnr_db(), 0.0);
    }

    #[test]
    fn full_saturation_overflow_degrades_sqnr_gracefully() {
        // Every sample is far outside the format's range, so the whole
        // reconstruction pins at the saturation rails — the worst case
        // the range-analysis flow exists to avoid.
        let fmt = QFormat::new(8).unwrap(); // Q7.8: max ≈ 127.996
        let xs: Vec<f32> = (1..=64).map(|i| 1000.0 + i as f32).collect();
        let back = dequantize_slice(&quantize_slice(&xs, fmt), fmt);
        assert!(back.iter().all(|&b| b == fmt.max_value()), "all saturated");
        let stats = compare(&xs, &back);
        // The error is the full headroom shortfall, not a rounding step.
        assert!((stats.max_abs - (1064.0 - f64::from(fmt.max_value()))).abs() < 1e-3);
        assert!(stats.max_abs > 900.0);
        // SQNR collapses but stays finite and well-defined (the signal
        // is nonzero, the error is nonzero).
        let sqnr = stats.sqnr_db();
        assert!(sqnr.is_finite());
        assert!(sqnr < 3.0, "saturated SQNR should be near 0 dB: {sqnr}");
        // Negative saturation behaves symmetrically.
        let neg: Vec<f32> = xs.iter().map(|x| -x).collect();
        let back = dequantize_slice(&quantize_slice(&neg, fmt), fmt);
        assert!(back.iter().all(|&b| b == fmt.min_value()));
        let neg_stats = compare(&neg, &back);
        assert!((neg_stats.sqnr_db() - sqnr).abs() < 0.1);
    }

    #[test]
    fn compare_error_metrics_are_symmetric_in_their_arguments() {
        let a = [1.0f32, -2.5, 0.25, 7.0];
        let b = [0.75f32, -2.0, 0.5, 6.0];
        let ab = compare(&a, &b);
        let ba = compare(&b, &a);
        // The error metrics measure |a - b|, which argument order
        // cannot change.
        assert_eq!(ab.mse, ba.mse);
        assert_eq!(ab.max_abs, ba.max_abs);
        assert_eq!(ab.count, ba.count);
        // The *signal* power deliberately follows the first argument —
        // the reference IS the signal — so SQNR is the one quantity
        // that legitimately differs when the roles are swapped.
        assert_ne!(ab.signal_power, ba.signal_power);
        assert_ne!(ab.sqnr_db(), ba.sqnr_db());
        // Equal-power references are the special case where even SQNR
        // is order-free.
        let c = [2.0f32, 1.0];
        let d = [1.0f32, 2.0];
        assert_eq!(compare(&c, &d).sqnr_db(), compare(&d, &c).sqnr_db());
    }

    #[test]
    fn empty_input_is_default() {
        assert_eq!(compare(&[], &[]), ErrorStats::default());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn more_frac_bits_means_higher_sqnr() {
        // A deterministic signal in [-1, 1] that no fixed-point grid
        // represents exactly.
        let xs: Vec<f32> = (0..512).map(|i| (i as f32 * 0.437_21).sin()).collect();
        let mut last = -1.0f64;
        for frac in [4u32, 8, 12, 15] {
            let fmt = QFormat::new(frac).unwrap();
            let back = dequantize_slice(&quantize_slice(&xs, fmt), fmt);
            let sqnr = compare(&xs, &back).sqnr_db();
            assert!(
                sqnr > last,
                "SQNR must improve with precision: {sqnr} !> {last} at {frac} bits"
            );
            last = sqnr;
        }
        // Rule of thumb: ~6 dB per bit. At 15 fractional bits on a ±1
        // signal we expect well over 70 dB.
        assert!(last > 70.0, "Q0.15 SQNR too low: {last}");
    }
}
