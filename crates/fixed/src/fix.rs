//! The 16-bit fixed-point word type.

use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A raw 16-bit fixed-point word, as carried on the chain's ifmap and
/// kernel channels.
///
/// `Fix16` is deliberately format-free: the hardware shifts bits, and only
/// the memory-interface converters know the Q-format (see
/// [`QFormat`](crate::QFormat)). Arithmetic on `Fix16` matches the RTL:
/// addition/subtraction wrap (two's complement), and multiplication widens
/// into the 32-bit accumulator via [`Fix16::widening_mul`].
///
/// # Example
///
/// ```
/// use chain_nn_fixed::Fix16;
/// let a = Fix16::from_raw(300);
/// let b = Fix16::from_raw(-200);
/// assert_eq!(a.widening_mul(b), -60_000);
/// assert_eq!((a + b).raw(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fix16(i16);

impl Fix16 {
    /// The additive identity.
    pub const ZERO: Fix16 = Fix16(0);
    /// The most positive word.
    pub const MAX: Fix16 = Fix16(i16::MAX);
    /// The most negative word.
    pub const MIN: Fix16 = Fix16(i16::MIN);

    /// Wraps a raw two's-complement word.
    pub const fn from_raw(raw: i16) -> Fix16 {
        Fix16(raw)
    }

    /// The underlying two's-complement word.
    pub const fn raw(self) -> i16 {
        self.0
    }

    /// Full-precision 16×16→32 multiply — the first stage of the PE's MAC.
    ///
    /// Never overflows: |i16::MIN|² < 2³¹.
    pub const fn widening_mul(self, rhs: Fix16) -> i32 {
        self.0 as i32 * rhs.0 as i32
    }

    /// Saturating addition (used by converters, not the psum path).
    #[must_use]
    pub const fn saturating_add(self, rhs: Fix16) -> Fix16 {
        Fix16(self.0.saturating_add(rhs.0))
    }

    /// True if the word is zero — the idle/bubble value on the channels.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Fix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0 as u16)
    }
}

impl fmt::LowerHex for Fix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&(self.0 as u16), f)
    }
}

impl fmt::UpperHex for Fix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&(self.0 as u16), f)
    }
}

impl fmt::Binary for Fix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&(self.0 as u16), f)
    }
}

impl fmt::Octal for Fix16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&(self.0 as u16), f)
    }
}

impl From<i16> for Fix16 {
    fn from(raw: i16) -> Fix16 {
        Fix16(raw)
    }
}

impl From<Fix16> for i16 {
    fn from(x: Fix16) -> i16 {
        x.0
    }
}

impl From<Fix16> for i32 {
    fn from(x: Fix16) -> i32 {
        x.0 as i32
    }
}

/// Wrapping two's-complement addition, matching a 16-bit hardware adder.
impl Add for Fix16 {
    type Output = Fix16;
    fn add(self, rhs: Fix16) -> Fix16 {
        Fix16(self.0.wrapping_add(rhs.0))
    }
}

/// Wrapping two's-complement subtraction.
impl Sub for Fix16 {
    type Output = Fix16;
    fn sub(self, rhs: Fix16) -> Fix16 {
        Fix16(self.0.wrapping_sub(rhs.0))
    }
}

/// Wrapping two's-complement negation.
impl Neg for Fix16 {
    type Output = Fix16;
    fn neg(self) -> Fix16 {
        Fix16(self.0.wrapping_neg())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_mul_extremes() {
        assert_eq!(
            Fix16::MIN.widening_mul(Fix16::MIN),
            (i16::MIN as i32) * (i16::MIN as i32)
        );
        assert_eq!(Fix16::MAX.widening_mul(Fix16::ZERO), 0);
        assert_eq!(Fix16::from_raw(-1).widening_mul(Fix16::from_raw(1)), -1);
    }

    #[test]
    fn add_wraps_like_hardware() {
        assert_eq!((Fix16::MAX + Fix16::from_raw(1)).raw(), i16::MIN);
        assert_eq!((Fix16::MIN - Fix16::from_raw(1)).raw(), i16::MAX);
        assert_eq!((-Fix16::MIN).raw(), i16::MIN); // two's complement edge
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(Fix16::MAX.saturating_add(Fix16::from_raw(1)), Fix16::MAX);
        assert_eq!(Fix16::MIN.saturating_add(Fix16::from_raw(-1)), Fix16::MIN);
    }

    #[test]
    fn formatting_nonempty() {
        let x = Fix16::from_raw(-1);
        assert_eq!(format!("{x}"), "0xffff");
        assert_eq!(format!("{x:x}"), "ffff");
        assert_eq!(format!("{x:b}"), "1111111111111111");
        assert_eq!(format!("{x:o}"), "177777");
        assert!(!format!("{x:?}").is_empty());
    }

    #[test]
    fn conversions() {
        let x = Fix16::from(-42i16);
        assert_eq!(i16::from(x), -42);
        assert_eq!(i32::from(x), -42);
    }
}
