//! Partitioning the chain into systolic primitives (paper Fig. 3,
//! Table II) and tiling a layer across them.

use std::fmt;

use crate::{CoreError, LayerShape};

/// How a kernel size carves the 1D chain into primitives.
///
/// A `kh×kw` kernel needs `kh·kw` PEs per primitive; a chain of `n` PEs
/// yields `⌊n/(kh·kw)⌋` primitives working on different ofmap channels in
/// parallel, with the remaining PEs idle (paper Table II).
///
/// # Example
///
/// ```
/// use chain_nn_core::KernelMapping;
/// // Paper Table II, K=7 row: 11 primitives, 539 active PEs, 93.6 %.
/// let m = KernelMapping::new(576, 7, 7).unwrap();
/// assert_eq!(m.num_primitives(), 11);
/// assert_eq!(m.active_pes(), 539);
/// assert!((m.utilization() - 0.936).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelMapping {
    chain_pes: usize,
    kh: usize,
    kw: usize,
    num_primitives: usize,
}

impl KernelMapping {
    /// Maps a `kh×kw` kernel onto a chain of `chain_pes` PEs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::KernelTooLargeForChain`] if a single
    /// primitive does not fit, and [`CoreError::Config`] for zero kernel
    /// extents.
    pub fn new(chain_pes: usize, kh: usize, kw: usize) -> Result<Self, CoreError> {
        if kh == 0 || kw == 0 {
            return Err(CoreError::Config("kernel extents must be non-zero".into()));
        }
        let per = kh * kw;
        if per > chain_pes {
            return Err(CoreError::KernelTooLargeForChain {
                needed: per,
                available: chain_pes,
            });
        }
        Ok(KernelMapping {
            chain_pes,
            kh,
            kw,
            num_primitives: chain_pes / per,
        })
    }

    /// Kernel rows.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel columns.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// PEs per primitive (`kh·kw`).
    pub fn pes_per_primitive(&self) -> usize {
        self.kh * self.kw
    }

    /// Primitives available for parallel ofmap channels.
    pub fn num_primitives(&self) -> usize {
        self.num_primitives
    }

    /// PEs doing useful work.
    pub fn active_pes(&self) -> usize {
        self.num_primitives * self.pes_per_primitive()
    }

    /// Idle tail PEs.
    pub fn idle_pes(&self) -> usize {
        self.chain_pes - self.active_pes()
    }

    /// PE utilization (the paper's "Efficiency" column in Table II).
    pub fn utilization(&self) -> f64 {
        self.active_pes() as f64 / self.chain_pes as f64
    }

    /// Number of ofmap-channel tiles needed for `m` output channels:
    /// `⌈m / primitives⌉` (the `OuterTile` loop of Fig. 7).
    pub fn m_tiles(&self, m: usize) -> usize {
        m.div_ceil(self.num_primitives)
    }

    /// Primitives actually used while processing tile `tile` of `m`
    /// output channels (the last tile may be partial).
    pub fn primitives_in_tile(&self, m: usize, tile: usize) -> usize {
        let done = tile * self.num_primitives;
        m.saturating_sub(done).min(self.num_primitives)
    }
}

impl fmt::Display for KernelMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} kernel: {} primitives x {} PEs = {}/{} active ({:.1}%)",
            self.kh,
            self.kw,
            self.num_primitives,
            self.pes_per_primitive(),
            self.active_pes(),
            self.chain_pes,
            100.0 * self.utilization()
        )
    }
}

/// One row of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableTwoRow {
    /// Kernel extent K.
    pub k: usize,
    /// PEs per primitive (K²).
    pub pes_per_primitive: usize,
    /// Active primitives.
    pub active_primitives: usize,
    /// Active PEs.
    pub active_pes: usize,
    /// Utilization in percent.
    pub efficiency_pct: f64,
}

/// Regenerates the paper's Table II for a chain of `chain_pes` PEs over
/// the mainstream kernel sizes {3, 5, 7, 9, 11}.
///
/// # Example
///
/// ```
/// use chain_nn_core::mapper::table_two;
/// let rows = table_two(576);
/// assert_eq!(rows[0].active_pes, 576);     // K=3: 100 %
/// assert_eq!(rows[4].active_pes, 484);     // K=11: 84.0 %
/// ```
pub fn table_two(chain_pes: usize) -> Vec<TableTwoRow> {
    [3usize, 5, 7, 9, 11]
        .into_iter()
        .filter_map(|k| KernelMapping::new(chain_pes, k, k).ok())
        .map(|m| TableTwoRow {
            k: m.kh(),
            pes_per_primitive: m.pes_per_primitive(),
            active_primitives: m.num_primitives(),
            active_pes: m.active_pes(),
            efficiency_pct: 100.0 * m.utilization(),
        })
        .collect()
}

/// A unit of scheduled work: one primitive computing one ofmap channel of
/// one input channel's pattern band.
///
/// The simulator and the traffic model both iterate layers in this order
/// (the `InnerTile` loops of Fig. 7): ofmap tile → input channel → row
/// band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandStep {
    /// Ofmap-channel tile index.
    pub m_tile: usize,
    /// Input channel within the layer (group-local).
    pub c: usize,
    /// Pattern band index; the band covers ofmap rows
    /// `[band·kh, min((band+1)·kh, out_h))`.
    pub band: usize,
}

/// Enumerates the band steps of a layer under a mapping, in dataflow
/// order.
pub fn band_steps(shape: &LayerShape, mapping: &KernelMapping) -> Vec<BandStep> {
    let bands = shape.out_h().div_ceil(mapping.kh());
    let tiles = mapping.m_tiles(shape.m);
    let mut steps = Vec::with_capacity(tiles * shape.c * bands);
    for m_tile in 0..tiles {
        for c in 0..shape.c {
            for band in 0..bands {
                steps.push(BandStep { m_tile, c, band });
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_matches_paper_exactly() {
        // Paper Table II for the 576-PE chain.
        let rows = table_two(576);
        let expect = [
            (3, 9, 64, 576, 100.0),
            (5, 25, 23, 575, 99.8),
            (7, 49, 11, 539, 93.6),
            (9, 81, 7, 567, 98.4),
            (11, 121, 4, 484, 84.0),
        ];
        // NOTE: the paper prints 100% for K=9 (567/576 = 98.4%); we match
        // the arithmetic, EXPERIMENTS.md records the discrepancy.
        for (row, (k, per, prim, act, eff)) in rows.iter().zip(expect) {
            assert_eq!(row.k, k);
            assert_eq!(row.pes_per_primitive, per);
            assert_eq!(row.active_primitives, prim);
            assert_eq!(row.active_pes, act);
            assert!(
                (row.efficiency_pct - eff).abs() < 0.05,
                "K={k}: {} vs {eff}",
                row.efficiency_pct
            );
        }
    }

    #[test]
    fn mapping_basics() {
        let m = KernelMapping::new(18, 3, 3).unwrap();
        assert_eq!(m.num_primitives(), 2);
        assert_eq!(m.idle_pes(), 0);
        let m = KernelMapping::new(20, 3, 3).unwrap();
        assert_eq!(m.idle_pes(), 2);
        assert!((m.utilization() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn rect_mapping() {
        let m = KernelMapping::new(576, 3, 2).unwrap();
        assert_eq!(m.pes_per_primitive(), 6);
        assert_eq!(m.num_primitives(), 96);
    }

    #[test]
    fn m_tiles_and_partial_tiles() {
        let m = KernelMapping::new(576, 3, 3).unwrap(); // 64 primitives
        assert_eq!(m.m_tiles(384), 6);
        assert_eq!(m.m_tiles(65), 2);
        assert_eq!(m.primitives_in_tile(65, 0), 64);
        assert_eq!(m.primitives_in_tile(65, 1), 1);
        assert_eq!(m.primitives_in_tile(65, 2), 0);
    }

    #[test]
    fn zero_kernel_rejected() {
        assert!(KernelMapping::new(10, 0, 3).is_err());
    }

    #[test]
    fn band_steps_cover_layer() {
        let shape = LayerShape::square(4, 13, 130, 3, 1, 1);
        let m = KernelMapping::new(576, 3, 3).unwrap();
        let steps = band_steps(&shape, &m);
        // 3 m-tiles (130/64) x 4 channels x 5 bands (13/3 -> 5)
        assert_eq!(steps.len(), 3 * 4 * 5);
        assert_eq!(
            steps[0],
            BandStep {
                m_tile: 0,
                c: 0,
                band: 0
            }
        );
        assert_eq!(steps.last().unwrap().band, 4);
    }

    #[test]
    fn display_mentions_everything() {
        let m = KernelMapping::new(576, 11, 11).unwrap();
        let s = m.to_string();
        assert!(s.contains("484") && s.contains("84.0"));
    }
}
