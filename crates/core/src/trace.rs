//! VCD waveform tracing of the chain — the reproduction's ModelSim.
//!
//! The paper debugs its RTL in ModelSim; this module gives the simulator
//! the same observability: a standard Value-Change-Dump (IEEE 1364 §18)
//! writer plus a helper that records every PE's lane registers, working
//! weight and MAC output while streaming one pattern. The output loads
//! in GTKWave/Surfer.
//!
//! # Example
//!
//! ```
//! use chain_nn_core::trace::trace_pattern;
//! use chain_nn_core::LayerShape;
//! use chain_nn_fixed::Fix16;
//! use chain_nn_tensor::Tensor;
//!
//! let shape = LayerShape::square(1, 5, 1, 3, 1, 0);
//! let ifmap = Tensor::filled([1, 1, 5, 5], Fix16::from_raw(1));
//! let weights = Tensor::filled([1, 1, 3, 3], Fix16::from_raw(2));
//! let vcd = trace_pattern(&shape, &ifmap, &weights, 0).unwrap();
//! assert!(vcd.starts_with("$date"));
//! assert!(vcd.contains("$var wire 16"));
//! ```

use std::fmt::Write as _;

use chain_nn_fixed::Fix16;
use chain_nn_tensor::Tensor;

use crate::chain::Chain;
use crate::schedule::{DualChannelSchedule, InputSchedule, Lane};
use crate::{CoreError, LayerShape};

/// A minimal VCD (value-change-dump) writer.
///
/// Signals are fixed-width wires; values are emitted only on change,
/// per the format's contract.
#[derive(Debug)]
pub struct VcdWriter {
    header: String,
    body: String,
    ids: Vec<(String, u32)>, // (identifier, width)
    last: Vec<Option<u64>>,
    time: u64,
    header_closed: bool,
}

impl VcdWriter {
    /// Starts a VCD document with a module scope named `scope`.
    pub fn new(scope: &str) -> Self {
        let mut header = String::new();
        let _ = writeln!(header, "$date\n  chain-nn-repro\n$end");
        let _ = writeln!(header, "$version\n  chain-nn-core trace\n$end");
        let _ = writeln!(header, "$timescale 1ns $end");
        let _ = writeln!(header, "$scope module {scope} $end");
        VcdWriter {
            header,
            body: String::new(),
            ids: Vec::new(),
            last: Vec::new(),
            time: 0,
            header_closed: false,
        }
    }

    /// Declares a `width`-bit wire named `name`; returns its signal
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if called after the first [`VcdWriter::step`] — VCD
    /// headers cannot be amended mid-dump.
    pub fn add_signal(&mut self, name: &str, width: u32) -> usize {
        assert!(
            !self.header_closed,
            "signals must be declared before the first step"
        );
        let idx = self.ids.len();
        let ident = Self::identifier(idx);
        let _ = writeln!(self.header, "$var wire {width} {ident} {name} $end");
        self.ids.push((ident, width));
        self.last.push(None);
        idx
    }

    /// VCD short identifiers: printable ASCII starting at `!`.
    fn identifier(idx: usize) -> String {
        let mut s = String::new();
        let mut i = idx;
        loop {
            s.push((b'!' + (i % 94) as u8) as char);
            i /= 94;
            if i == 0 {
                break;
            }
            i -= 1;
        }
        s
    }

    /// Advances simulation time to `t` (nanoseconds granularity).
    pub fn step(&mut self, t: u64) {
        if !self.header_closed {
            let _ = writeln!(self.header, "$upscope $end");
            let _ = writeln!(self.header, "$enddefinitions $end");
            self.header_closed = true;
        }
        self.time = t;
        let _ = writeln!(self.body, "#{t}");
    }

    /// Records signal `sig` holding `value` (two's-complement bits,
    /// truncated to the declared width). Emits only on change.
    ///
    /// # Panics
    ///
    /// Panics for an unknown signal handle.
    pub fn change(&mut self, sig: usize, value: u64) {
        let (ident, width) = &self.ids[sig];
        let masked = if *width >= 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        if self.last[sig] == Some(masked) {
            return;
        }
        self.last[sig] = Some(masked);
        let _ = writeln!(self.body, "b{masked:b} {ident}");
    }

    /// Finishes the dump and returns the VCD text.
    pub fn finish(mut self) -> String {
        if !self.header_closed {
            let _ = writeln!(self.header, "$upscope $end");
            let _ = writeln!(self.header, "$enddefinitions $end");
        }
        self.header + &self.body
    }
}

/// Streams one pattern (`band`) of a single-channel stride-1 layer
/// through a freshly built chain, tracing every PE's odd/even lane
/// registers, working weight and MAC register, plus the two feed lanes.
///
/// Returns the VCD text.
///
/// # Errors
///
/// Propagates shape/schedule/mapping errors; the layer must be
/// stride 1 with `c = 1` (tracing one pattern of one channel keeps
/// dumps readable).
pub fn trace_pattern(
    shape: &LayerShape,
    ifmap: &Tensor<Fix16>,
    weights: &Tensor<Fix16>,
    band: usize,
) -> Result<String, CoreError> {
    shape.validate()?;
    if shape.c != 1 {
        return Err(CoreError::Shape(
            "pattern tracing expects a single input channel".into(),
        ));
    }
    let schedule = DualChannelSchedule::for_shape(shape)?;
    let p = shape.kh * shape.kw;
    let prims = shape.m.clamp(1, 4); // keep the dump small
    let mut chain = Chain::new(prims, p, 1)?;
    for g in 0..prims {
        for pe in 0..p {
            chain.write_weight(
                g * p + pe,
                0,
                weights.get(g, 0, pe % shape.kh, pe / shape.kh),
            )?;
        }
    }
    chain.latch_all(0)?;

    let mut vcd = VcdWriter::new("chain_nn");
    let feed_odd = vcd.add_signal("feed_odd_if", 16);
    let feed_even = vcd.add_signal("feed_even_if", 16);
    let mut pe_sigs = Vec::new();
    for i in 0..chain.len() {
        let odd = vcd.add_signal(&format!("pe{i}_odd_if"), 16);
        let even = vcd.add_signal(&format!("pe{i}_even_if"), 16);
        let w = vcd.add_signal(&format!("pe{i}_weight"), 16);
        let mac = vcd.add_signal(&format!("pe{i}_mac_out"), 32);
        pe_sigs.push((odd, even, w, mac));
    }

    let pad = shape.pad as isize;
    let t_end = schedule.duration() as u64 + 2 * (prims * p) as u64;
    for t in 1..=t_end {
        let mut feed = [Fix16::ZERO; 2];
        if t <= schedule.duration() as u64 {
            for (lane, px) in schedule.feed(t as usize).iter().enumerate() {
                if let Some(px) = px {
                    let row = (band * schedule.rows_per_band() + px.row) as isize - pad;
                    let col = px.col as isize - pad;
                    feed[lane] = ifmap.get_padded(0, 0, row, col, Fix16::ZERO);
                }
            }
        }
        chain.step(t, feed, &schedule);
        vcd.step(t);
        vcd.change(feed_odd, feed[0].raw() as u16 as u64);
        vcd.change(feed_even, feed[1].raw() as u16 as u64);
        for (i, &(odd, even, w, mac)) in pe_sigs.iter().enumerate() {
            let pe = chain.pe(i);
            vcd.change(odd, pe.lane(Lane::Odd).raw() as u16 as u64);
            vcd.change(even, pe.lane(Lane::Even).raw() as u16 as u64);
            vcd.change(w, pe.weight().raw() as u16 as u64);
            vcd.change(mac, pe.mac_out().raw() as u32 as u64);
        }
    }
    Ok(vcd.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifiers_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = VcdWriter::identifier(i);
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(id), "identifier collision at {i}");
        }
    }

    #[test]
    fn emits_only_changes() {
        let mut vcd = VcdWriter::new("t");
        let s = vcd.add_signal("sig", 8);
        vcd.step(1);
        vcd.change(s, 5);
        vcd.step(2);
        vcd.change(s, 5); // no change -> no line
        vcd.step(3);
        vcd.change(s, 6);
        let text = vcd.finish();
        assert_eq!(text.matches("b101 ").count(), 1);
        assert_eq!(text.matches("b110 ").count(), 1);
    }

    #[test]
    fn header_structure() {
        let mut vcd = VcdWriter::new("top");
        let _ = vcd.add_signal("a", 16);
        vcd.step(0);
        let text = vcd.finish();
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$enddefinitions $end"));
        let defs_end = text.find("$enddefinitions").expect("defs");
        let var = text.find("$var").expect("var");
        assert!(var < defs_end, "vars must precede enddefinitions");
    }

    #[test]
    #[should_panic(expected = "before the first step")]
    fn late_signal_rejected() {
        let mut vcd = VcdWriter::new("t");
        vcd.step(0);
        let _ = vcd.add_signal("late", 1);
    }

    #[test]
    fn pattern_trace_contains_weights_and_activity() {
        let shape = LayerShape::square(1, 6, 2, 3, 1, 0);
        let ifmap = Tensor::filled([1, 1, 6, 6], Fix16::from_raw(3));
        let weights = Tensor::filled([2, 1, 3, 3], Fix16::from_raw(2));
        let vcd = trace_pattern(&shape, &ifmap, &weights, 0).expect("traces");
        // 2 primitives x 9 PEs, 4 signals each, plus 2 feeds.
        assert_eq!(vcd.matches("$var wire").count(), 2 * 9 * 4 + 2);
        // Weights latched to 2 appear; pixel 3s flow; MACs move.
        assert!(vcd.contains("pe0_weight"));
        assert!(vcd.contains("pe17_mac_out"));
        assert!(vcd.matches('#').count() >= 21); // timeline present
    }

    #[test]
    fn multi_channel_rejected() {
        let shape = LayerShape::square(2, 6, 1, 3, 1, 0);
        let ifmap = Tensor::filled([1, 2, 6, 6], Fix16::ZERO);
        let weights = Tensor::filled([1, 2, 3, 3], Fix16::ZERO);
        assert!(trace_pattern(&shape, &ifmap, &weights, 0).is_err());
    }
}
