//! Layer shape as seen by the chain (a thin, validated view).

use std::fmt;

use chain_nn_nets::ConvLayerSpec;

use crate::CoreError;

/// The geometry of one convolution as the chain schedules it.
///
/// Unlike [`ConvLayerSpec`] (which describes a network layer, possibly
/// grouped), a `LayerShape` is what one *pass* over the chain computes:
/// `c` input channels, `m` output channels, a `kh×kw` kernel, one stride
/// and padding. Grouped layers become one `LayerShape` per group;
/// strided layers become several rectangular-kernel shapes via
/// [`polyphase`](crate::polyphase).
///
/// # Example
///
/// ```
/// use chain_nn_core::LayerShape;
/// let s = LayerShape::square(16, 13, 32, 3, 1, 1);
/// assert_eq!(s.out_h(), 13);
/// assert_eq!(s.padded_w(), 15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Input channels processed sequentially (accumulated in oMemory).
    pub c: usize,
    /// Input height (unpadded).
    pub h: usize,
    /// Input width (unpadded).
    pub w: usize,
    /// Output channels (mapped onto primitives).
    pub m: usize,
    /// Kernel rows.
    pub kh: usize,
    /// Kernel columns.
    pub kw: usize,
    /// Stride (1 for directly schedulable shapes).
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl LayerShape {
    /// Square-input, square-kernel shape.
    pub fn square(c: usize, h: usize, m: usize, k: usize, stride: usize, pad: usize) -> Self {
        LayerShape {
            c,
            h,
            w: h,
            m,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    /// Builds the shape of one group of a network layer.
    ///
    /// # Panics
    ///
    /// Panics if `group >= spec.groups()` — iterating groups is the
    /// caller's loop, an out-of-range index is a bug.
    pub fn from_spec_group(spec: &ConvLayerSpec, group: usize) -> Self {
        assert!(group < spec.groups(), "group {group} out of range");
        LayerShape {
            c: spec.c_per_group(),
            h: spec.h(),
            w: spec.w(),
            m: spec.m_per_group(),
            kh: spec.k(),
            kw: spec.k(),
            stride: spec.stride(),
            pad: spec.pad(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for zero extents or kernels that do
    /// not fit the padded input.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.c == 0 || self.h == 0 || self.w == 0 || self.m == 0 {
            return Err(CoreError::Shape(format!("zero extent in {self}")));
        }
        if self.kh == 0 || self.kw == 0 || self.stride == 0 {
            return Err(CoreError::Shape(format!("zero kernel/stride in {self}")));
        }
        if self.kh > self.padded_h() || self.kw > self.padded_w() {
            return Err(CoreError::Shape(format!(
                "kernel {}x{} exceeds padded input {}x{}",
                self.kh,
                self.kw,
                self.padded_h(),
                self.padded_w()
            )));
        }
        Ok(())
    }

    /// Padded input height.
    pub fn padded_h(&self) -> usize {
        self.h + 2 * self.pad
    }

    /// Padded input width.
    pub fn padded_w(&self) -> usize {
        self.w + 2 * self.pad
    }

    /// Output rows.
    pub fn out_h(&self) -> usize {
        (self.padded_h() - self.kh) / self.stride + 1
    }

    /// Output columns.
    pub fn out_w(&self) -> usize {
        (self.padded_w() - self.kw) / self.stride + 1
    }

    /// PEs one primitive needs for this kernel.
    pub fn pes_per_primitive(&self) -> usize {
        self.kh * self.kw
    }

    /// MACs per image for this shape.
    pub fn macs(&self) -> u64 {
        self.m as u64
            * self.out_h() as u64
            * self.out_w() as u64
            * self.c as u64
            * (self.kh * self.kw) as u64
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C={} {}x{} K={}x{} s={} p={} M={}",
            self.c, self.h, self.w, self.kh, self.kw, self.stride, self.pad, self.m
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_helper() {
        let s = LayerShape::square(3, 13, 8, 3, 1, 1);
        assert_eq!((s.out_h(), s.out_w()), (13, 13));
        assert_eq!(s.pes_per_primitive(), 9);
        assert_eq!(s.macs(), 8 * 13 * 13 * 3 * 9);
    }

    #[test]
    fn from_spec_group_splits_channels() {
        let spec = ConvLayerSpec::named("conv2", 96, 27, 27, 5, 1, 2, 256, 2).unwrap();
        let g = LayerShape::from_spec_group(&spec, 1);
        assert_eq!(g.c, 48);
        assert_eq!(g.m, 128);
        assert_eq!(g.out_h(), 27);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn group_index_checked() {
        let spec = ConvLayerSpec::square("c", 4, 8, 3, 1, 1, 4).unwrap();
        let _ = LayerShape::from_spec_group(&spec, 1);
    }

    #[test]
    fn validation() {
        assert!(LayerShape::square(1, 8, 1, 3, 1, 0).validate().is_ok());
        assert!(LayerShape::square(0, 8, 1, 3, 1, 0).validate().is_err());
        assert!(LayerShape::square(1, 2, 1, 5, 1, 0).validate().is_err());
        let mut s = LayerShape::square(1, 8, 1, 3, 1, 0);
        s.stride = 0;
        assert!(s.validate().is_err());
    }
}
