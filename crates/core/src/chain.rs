//! The 1D chain of PEs, partitioned into cascaded systolic primitives
//! (paper Fig. 3).
//!
//! Both ifmap lanes thread through *every* PE of the chain, so all
//! primitives observe the same pixel stream at staggered delays and can
//! compute different ofmap channels from a single iMemory fetch — the
//! source of Chain-NN's ifmap reuse. The psum path, by contrast, restarts
//! at each primitive head: primitive boundaries are where the "primitive
//! input/output ports" of Fig. 3 sit.

use chain_nn_fixed::{Acc32, Fix16};

use crate::pe::DualChannelPe;
use crate::schedule::{InputSchedule, Lane};
use crate::CoreError;

/// A chain of `num_primitives · prim_size` PEs.
///
/// # Example
///
/// ```
/// use chain_nn_core::chain::Chain;
/// let chain = Chain::new(4, 9, 16).unwrap(); // 4 primitives of 3x3
/// assert_eq!(chain.len(), 36);
/// assert_eq!(chain.num_primitives(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Chain {
    pes: Vec<DualChannelPe>,
    prim_size: usize,
}

impl Chain {
    /// Builds a chain of `num_primitives` primitives of `prim_size` PEs
    /// each, every PE with a `kmemory_depth`-slot kMemory.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if any argument is zero.
    pub fn new(
        num_primitives: usize,
        prim_size: usize,
        kmemory_depth: usize,
    ) -> Result<Self, CoreError> {
        if num_primitives == 0 || prim_size == 0 || kmemory_depth == 0 {
            return Err(CoreError::Config(
                "chain dimensions must be non-zero".into(),
            ));
        }
        Ok(Chain {
            pes: vec![DualChannelPe::new(kmemory_depth); num_primitives * prim_size],
            prim_size,
        })
    }

    /// Total PEs in the chain.
    pub fn len(&self) -> usize {
        self.pes.len()
    }

    /// True if the chain has no PEs (never constructible; present for
    /// `len`/`is_empty` convention).
    pub fn is_empty(&self) -> bool {
        self.pes.is_empty()
    }

    /// PEs per primitive.
    pub fn prim_size(&self) -> usize {
        self.prim_size
    }

    /// Number of primitives.
    pub fn num_primitives(&self) -> usize {
        self.pes.len() / self.prim_size
    }

    /// Immutable view of a PE (for inspection in tests).
    pub fn pe(&self, index: usize) -> &DualChannelPe {
        &self.pes[index]
    }

    /// Writes the weight for kMemory `slot` of PE `pe_index`.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::KMemoryOverflow`] for a bad slot.
    pub fn write_weight(
        &mut self,
        pe_index: usize,
        slot: usize,
        w: Fix16,
    ) -> Result<(), CoreError> {
        self.pes[pe_index].write_kmemory(slot, w)
    }

    /// Latches every PE's working weight from kMemory `slot` (start of a
    /// pattern for input channel `slot`).
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::KMemoryOverflow`] for a bad slot.
    pub fn latch_all(&mut self, slot: usize) -> Result<(), CoreError> {
        for pe in &mut self.pes {
            pe.latch_weight(slot)?;
        }
        Ok(())
    }

    /// Clears all pipeline registers (between patterns).
    pub fn flush_pipeline(&mut self) {
        for pe in &mut self.pes {
            pe.flush_pipeline();
        }
    }

    /// Advances the whole chain one cycle.
    ///
    /// `feed` is the pair of lane values entering PE 0 this cycle;
    /// `schedule` supplies each PE's mux selection for cycle `t`
    /// (1-based). PEs are updated tail-to-head so every PE consumes its
    /// predecessor's pre-cycle state, exactly like a synchronous register
    /// chain.
    pub fn step<S: InputSchedule + ?Sized>(&mut self, t: u64, feed: [Fix16; 2], schedule: &S) {
        for p in (0..self.pes.len()).rev() {
            let (odd_in, even_in) = if p == 0 {
                (feed[Lane::Odd.index()], feed[Lane::Even.index()])
            } else {
                let prev = &self.pes[p - 1];
                (prev.lane(Lane::Odd), prev.lane(Lane::Even))
            };
            let psum_in = if p % self.prim_size == 0 {
                Acc32::ZERO
            } else {
                self.pes[p - 1].psum_out()
            };
            // Pixel resident in PE p this cycle entered at τ = t − 1 − p.
            let tau = t as i64 - 1 - p as i64;
            let select = schedule.select(p, tau);
            self.pes[p].step(odd_in, even_in, psum_in, select);
        }
    }

    /// The result port of primitive `g`: its tail PE's MAC register,
    /// valid for the window whose index the schedule's `emit` computes
    /// from `u = t − 2·prim_size − g·prim_size`.
    pub fn tail(&self, g: usize) -> Acc32 {
        self.pes[(g + 1) * self.prim_size - 1].mac_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::DualChannelSchedule;

    #[test]
    fn construction_validates() {
        assert!(Chain::new(0, 9, 1).is_err());
        assert!(Chain::new(2, 0, 1).is_err());
        assert!(Chain::new(2, 9, 0).is_err());
        let c = Chain::new(3, 4, 2).unwrap();
        assert_eq!(c.len(), 12);
        assert!(!c.is_empty());
        assert_eq!(c.num_primitives(), 3);
    }

    /// Lanes travel one PE per cycle through primitive boundaries.
    #[test]
    fn lanes_shift_across_whole_chain() {
        let mut c = Chain::new(2, 2, 1).unwrap();
        let s = DualChannelSchedule::new(1, 2, 4).unwrap();
        c.step(1, [Fix16::from_raw(7), Fix16::from_raw(-7)], &s);
        for t in 2..=4 {
            c.step(t, [Fix16::ZERO; 2], &s);
        }
        // After 4 cycles the pixel fed at t=1 sits in PE 3's lane regs.
        assert_eq!(c.pe(3).lane(Lane::Odd).raw(), 7);
        assert_eq!(c.pe(3).lane(Lane::Even).raw(), -7);
        assert_eq!(c.pe(0).lane(Lane::Odd).raw(), 0);
    }

    /// Psum restarts at primitive heads: with all weights = 1 and a
    /// constant stream, each primitive's sum is bounded by its own size.
    #[test]
    fn psum_restarts_at_primitive_boundary() {
        let mut c = Chain::new(2, 2, 1).unwrap();
        for p in 0..4 {
            c.write_weight(p, 0, Fix16::from_raw(1)).unwrap();
        }
        c.latch_all(0).unwrap();
        // 1x2 kernel schedule over width 6: kh=1 so lane selection is
        // trivially Odd (all columns even parity fall on both... feed
        // handles it).
        let s = DualChannelSchedule::new(1, 2, 6).unwrap();
        let mut outs: [Vec<i32>; 2] = [Vec::new(), Vec::new()];
        for t in 1..=14u64 {
            // Feed constant 1s on the lane the schedule expects.
            let feed_px = s.feed(t as usize);
            let mut feed = [Fix16::ZERO; 2];
            for (i, px) in feed_px.iter().enumerate() {
                if px.is_some() {
                    feed[i] = Fix16::from_raw(1);
                }
            }
            c.step(t, feed, &s);
            for g in 0..2 {
                let u = t as i64 - (2 * 2 + g * 2) as i64;
                if s.emit(u, 5).is_some() {
                    outs[g as usize].push(c.tail(g as usize).raw());
                }
            }
        }
        // Window sums for a 1x2 all-ones kernel over an all-ones image
        // are 2 — for BOTH primitives, because the second starts from a
        // fresh zero psum.
        assert_eq!(outs[0], vec![2; 5]);
        assert_eq!(outs[1], vec![2; 5]);
    }

    #[test]
    fn flush_then_reuse() {
        let mut c = Chain::new(1, 4, 1).unwrap();
        let s = DualChannelSchedule::new(2, 2, 4).unwrap();
        c.step(1, [Fix16::from_raw(9), Fix16::from_raw(9)], &s);
        c.flush_pipeline();
        assert_eq!(c.pe(0).lane(Lane::Odd).raw(), 0);
        assert_eq!(c.tail(0).raw(), 0);
    }
}
