//! The Chain-NN 1D chain architecture (the paper's contribution).
//!
//! Chain-NN organizes processing engines (PEs) as a single 1D chain
//! (paper Fig. 2(c)). Adjacent groups of K² PEs form **1D systolic
//! primitives** (Fig. 3/4) computing 2D convolutions: kernel weights stay
//! resident inside each PE (`kMemory`), ifmap pixels stream through two
//! channels (`OddIF`/`EvenIF`, Fig. 6), and the **column-wise scan input
//! pattern** (Fig. 5) keeps every PE busy every cycle after warm-up.
//!
//! Module map:
//!
//! * [`config`] — chain instantiation parameters ([`ChainConfig`],
//!   including the paper's 576-PE / 700 MHz instance).
//! * [`mapper`] — how a kernel size partitions the chain into primitives
//!   (Table II) and how a layer is tiled across primitives.
//! * [`schedule`] — the column-wise scan input pattern generator and the
//!   per-PE channel-select (mux) rule, both derived in closed form.
//! * [`pe`] / [`primitive`] / [`chain`] — the cycle-accurate hardware
//!   model: dual-channel PEs, systolic primitives, the full chain.
//! * [`fsm`] — the controller finite-state machine (paper §III.B).
//! * [`sim`] — drives a convolutional layer through the chain cycle by
//!   cycle, collecting ofmaps, cycle counts and access counters.
//! * [`perf`] — the analytic performance model (validated against both
//!   the simulator and the paper's Fig. 9).
//! * [`polyphase`] — extension: stride-s convolution decomposed into s²
//!   stride-1 phase convolutions on rectangular primitives, so strided
//!   layers (AlexNet conv1) run at full chain utilization.
//!
//! # Example
//!
//! ```
//! use chain_nn_core::{ChainConfig, LayerShape, sim::ChainSim};
//! use chain_nn_fixed::Fix16;
//! use chain_nn_tensor::Tensor;
//!
//! // A small chain: 2 primitives of 3x3.
//! let cfg = ChainConfig::builder().num_pes(18).build().unwrap();
//! let shape = LayerShape::square(1, 6, 2, 3, 1, 0);
//! let ifmap = Tensor::<Fix16>::filled([1, 1, 6, 6], Fix16::from_raw(2));
//! let weights = Tensor::<Fix16>::filled([2, 1, 3, 3], Fix16::from_raw(3));
//! let run = ChainSim::new(cfg).run_layer(&shape, &ifmap, &weights).unwrap();
//! // Every output is 9 * 2 * 3 = 54.
//! assert!(run.ofmaps.as_slice().iter().all(|&v| v == 54));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod config;
pub mod fsm;
pub mod isa;
pub mod mapper;
pub mod pe;
pub mod perf;
pub mod polyphase;
pub mod primitive;
pub mod schedule;
pub mod sim;
pub mod timing;
pub mod trace;

mod error;
mod shape;

pub use config::{ChainConfig, ChainConfigBuilder};
pub use error::CoreError;
pub use mapper::KernelMapping;
pub use shape::LayerShape;
