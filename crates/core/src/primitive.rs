//! A standalone 1D systolic primitive (paper Fig. 4).
//!
//! [`SystolicPrimitive`] is a single-primitive [chain][crate::chain::Chain]
//! with a convenience API for running one 2D convolution window stream —
//! useful for unit testing and for understanding the architecture without
//! the full chain/FSM machinery. The heavy lifting (multi-primitive
//! chains, channel accumulation, tiling) lives in
//! [`sim`](crate::sim).

use chain_nn_fixed::{Acc32, Fix16};
use chain_nn_tensor::Tensor;

use crate::chain::Chain;
use crate::schedule::{DualChannelSchedule, InputSchedule};
use crate::CoreError;

/// A single `kh×kw` systolic primitive with a dual-channel feed.
///
/// # Example — one 3×3 convolution band
///
/// ```
/// use chain_nn_core::primitive::SystolicPrimitive;
/// use chain_nn_fixed::Fix16;
/// use chain_nn_tensor::Tensor;
///
/// // All-ones 3x3 kernel over an all-twos 5x5 image: every window sums
/// // to 18.
/// let kernel = Tensor::filled([1, 1, 3, 3], Fix16::from_raw(1));
/// let image = Tensor::filled([1, 1, 5, 5], Fix16::from_raw(2));
/// let mut prim = SystolicPrimitive::new(3, 3).unwrap();
/// prim.load_kernel(&kernel).unwrap();
/// let band = prim.run_band(&image, 0).unwrap();
/// assert_eq!(band.len(), 3);           // 3 ofmap rows per band
/// assert!(band.iter().all(|row| row.iter().all(|&v| v == 18)));
/// ```
#[derive(Debug, Clone)]
pub struct SystolicPrimitive {
    chain: Chain,
    kh: usize,
    kw: usize,
}

impl SystolicPrimitive {
    /// Builds a `kh×kw` primitive (kh·kw PEs, 1-deep kMemory).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for zero kernel extents.
    pub fn new(kh: usize, kw: usize) -> Result<Self, CoreError> {
        Ok(SystolicPrimitive {
            chain: Chain::new(1, kh * kw, 1)?,
            kh,
            kw,
        })
    }

    /// Kernel rows.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel columns.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Number of PEs (`kh·kw`).
    pub fn len(&self) -> usize {
        self.kh * self.kw
    }

    /// Always false (a primitive has at least one PE).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Loads a 1×1×kh×kw kernel tensor, column-major into the PEs: PE `p`
    /// holds kernel element `(p mod kh, p div kh)`, matching the
    /// column-wise window scan.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DataMismatch`] if the tensor extent is not
    /// `kh×kw`.
    pub fn load_kernel(&mut self, kernel: &Tensor<Fix16>) -> Result<(), CoreError> {
        let [_, _, h, w] = kernel.shape().dims();
        if (h, w) != (self.kh, self.kw) {
            return Err(CoreError::DataMismatch(format!(
                "kernel {h}x{w} does not match primitive {}x{}",
                self.kh, self.kw
            )));
        }
        for p in 0..self.len() {
            let (i, j) = (p % self.kh, p / self.kh);
            self.chain.write_weight(p, 0, kernel.get(0, 0, i, j))?;
        }
        self.chain.latch_all(0)
    }

    /// Runs one pattern band over a single-channel image: streams the
    /// `2·kh−1` ifmap rows starting at `band·kh` and returns the `kh`
    /// ofmap rows of the band (rows clipped at the image bottom are
    /// omitted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if the image is narrower than the
    /// kernel.
    pub fn run_band(
        &mut self,
        image: &Tensor<Fix16>,
        band: usize,
    ) -> Result<Vec<Vec<i32>>, CoreError> {
        let [_, _, h, w] = image.shape().dims();
        let schedule = DualChannelSchedule::new(self.kh, self.kw, w)?;
        let out_w = w - self.kw + 1;
        let out_h = if h >= self.kh { h - self.kh + 1 } else { 0 };
        let band_rows = out_h.saturating_sub(band * self.kh).min(self.kh);
        let mut rows = vec![vec![0i32; out_w]; band_rows];

        self.chain.flush_pipeline();
        let p = self.len();
        let t_end = schedule.duration() as u64 + 2 * p as u64;
        for t in 1..=t_end {
            let mut feed = [Fix16::ZERO; 2];
            if t <= schedule.duration() as u64 {
                for (lane, px) in schedule.feed(t as usize).iter().enumerate() {
                    if let Some(px) = px {
                        let row = band * self.kh + px.row;
                        if row < h {
                            feed[lane] = image.get(0, 0, row, px.col);
                        }
                    }
                }
            }
            self.chain.step(t, feed, &schedule);
            let u = t as i64 - 2 * p as i64;
            if let Some(slot) = schedule.emit(u, out_w) {
                if slot.row_in_band < band_rows {
                    rows[slot.row_in_band][slot.col] = self.chain.tail(0).raw();
                }
            }
        }
        Ok(rows)
    }

    /// The primitive's output port value (tail MAC register).
    pub fn output_port(&self) -> Acc32 {
        self.chain.tail(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_fixed::OverflowMode;
    use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};

    fn fix_tensor(dims: [usize; 4], vals: &[i16]) -> Tensor<Fix16> {
        Tensor::from_vec(dims, vals.iter().map(|&v| Fix16::from_raw(v)).collect()).unwrap()
    }

    /// The primitive reproduces the golden convolution for every band of
    /// a 3x3 kernel with distinct weights and pixels.
    #[test]
    fn matches_golden_model_3x3() {
        let kernel = fix_tensor([1, 1, 3, 3], &[1, -2, 3, 4, -5, 6, 7, 8, -9]);
        let vals: Vec<i16> = (0..49).map(|i| (i * 3 % 17) as i16 - 8).collect();
        let image = fix_tensor([1, 1, 7, 7], &vals);
        let golden = conv2d_fix(
            &image,
            &kernel,
            ConvGeometry::new(3, 1, 0).unwrap(),
            OverflowMode::Wrapping,
        )
        .unwrap();

        let mut prim = SystolicPrimitive::new(3, 3).unwrap();
        prim.load_kernel(&kernel).unwrap();
        for band in 0..2 {
            let rows = prim.run_band(&image, band).unwrap();
            for (d, row) in rows.iter().enumerate() {
                for (x, &v) in row.iter().enumerate() {
                    assert_eq!(
                        v,
                        golden.get(0, 0, band * 3 + d, x),
                        "band {band} row {d} col {x}"
                    );
                }
            }
        }
    }

    /// Rectangular kernels work too (needed by the polyphase extension).
    #[test]
    fn matches_golden_model_2x3() {
        let kernel = fix_tensor([1, 1, 2, 3], &[1, 2, 3, 4, 5, 6]);
        let vals: Vec<i16> = (0..30).map(|i| i as i16 - 15).collect();
        let image = fix_tensor([1, 1, 5, 6], &vals);
        let golden = conv2d_fix(
            &image,
            &kernel,
            ConvGeometry::rect(2, 3, 1, 0).unwrap(),
            OverflowMode::Wrapping,
        )
        .unwrap();
        let mut prim = SystolicPrimitive::new(2, 3).unwrap();
        prim.load_kernel(&kernel).unwrap();
        for band in 0..2 {
            let rows = prim.run_band(&image, band).unwrap();
            for (d, row) in rows.iter().enumerate() {
                for (x, &v) in row.iter().enumerate() {
                    assert_eq!(v, golden.get(0, 0, band * 2 + d, x));
                }
            }
        }
    }

    /// A 1x1 primitive degenerates to elementwise scaling.
    #[test]
    fn one_by_one_kernel() {
        let kernel = fix_tensor([1, 1, 1, 1], &[3]);
        let image = fix_tensor([1, 1, 2, 4], &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut prim = SystolicPrimitive::new(1, 1).unwrap();
        prim.load_kernel(&kernel).unwrap();
        let band0 = prim.run_band(&image, 0).unwrap();
        assert_eq!(band0, vec![vec![3, 6, 9, 12]]);
        let band1 = prim.run_band(&image, 1).unwrap();
        assert_eq!(band1, vec![vec![15, 18, 21, 24]]);
    }

    /// Partial last band returns only the remaining rows.
    #[test]
    fn partial_band_clipped() {
        let kernel = fix_tensor([1, 1, 3, 3], &[0, 0, 0, 0, 1, 0, 0, 0, 0]);
        let image = fix_tensor([1, 1, 6, 5], &(0..30).map(|i| i as i16).collect::<Vec<_>>());
        let mut prim = SystolicPrimitive::new(3, 3).unwrap();
        prim.load_kernel(&kernel).unwrap();
        // out_h = 4 -> band 1 has only 1 valid row.
        let rows = prim.run_band(&image, 1).unwrap();
        assert_eq!(rows.len(), 1);
        // identity kernel: output row 3 = image row 4, cols 1..4
        assert_eq!(rows[0], vec![21, 22, 23]);
    }

    #[test]
    fn kernel_shape_checked() {
        let mut prim = SystolicPrimitive::new(3, 3).unwrap();
        let bad = fix_tensor([1, 1, 2, 2], &[1, 2, 3, 4]);
        assert!(matches!(
            prim.load_kernel(&bad),
            Err(CoreError::DataMismatch(_))
        ));
    }
}
