//! The configuration-stream ISA of the controller.
//!
//! Paper §III.B: "The finite-state machine is initialized to specific
//! CNN parameters", then loads kernels and streams patterns. This module
//! concretizes that interface as a little instruction set — the 64-bit
//! configuration words a host would DMA to the accelerator — with a
//! bit-exact encoder/decoder and an assembler from the control sequence
//! of [`crate::fsm::ControllerFsm`].
//!
//! Word format (64 bits, opcode in the top 4):
//!
//! ```text
//! CFG_SHAPE  op=1 | kh:6 | kw:6 | stride:4 | pad:4 | c:14 | m:14      (+ reserved)
//! CFG_DIMS   op=2 | h:16 | w:16                                      (+ reserved)
//! LOAD       op=3 | m_tile:16 | c_tile:16
//! STREAM     op=4 | c:16 | band:16
//! DRAIN      op=5 | m_tile:16
//! HALT       op=6
//! ```
//!
//! # Example
//!
//! ```
//! use chain_nn_core::isa::{Program, Instruction};
//! use chain_nn_core::{KernelMapping, LayerShape};
//!
//! let shape = LayerShape::square(2, 6, 3, 3, 1, 0);
//! let mapping = KernelMapping::new(18, 3, 3).unwrap();
//! let prog = Program::assemble(&shape, &mapping, 256).unwrap();
//! let words = prog.encode();
//! let back = Program::decode(&words).unwrap();
//! assert_eq!(prog, back);
//! assert!(matches!(back.instructions().last(), Some(Instruction::Halt)));
//! ```

use std::fmt;

use crate::fsm::{ControlStep, ControllerFsm};
use crate::{CoreError, KernelMapping, LayerShape};

/// One controller instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Layer shape half 1: kernel, stride, pad, channel counts.
    CfgShape {
        /// Kernel rows (≤ 63).
        kh: u8,
        /// Kernel columns (≤ 63).
        kw: u8,
        /// Stride (≤ 15).
        stride: u8,
        /// Padding (≤ 15).
        pad: u8,
        /// Input channels (≤ 16383).
        c: u16,
        /// Output channels (≤ 16383).
        m: u16,
    },
    /// Layer shape half 2: input extents.
    CfgDims {
        /// Input height.
        h: u16,
        /// Input width.
        w: u16,
    },
    /// Load kernels for (ofmap tile, kernel tile).
    Load {
        /// Ofmap tile.
        m_tile: u16,
        /// Kernel tile.
        c_tile: u16,
    },
    /// Stream one pattern of input channel `c`, row band `band`.
    Stream {
        /// Input channel.
        c: u16,
        /// Row band.
        band: u16,
    },
    /// Drain the pipeline before the next load.
    Drain {
        /// Ofmap tile being finished.
        m_tile: u16,
    },
    /// End of program.
    Halt,
}

/// Decode error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaError {
    /// Unknown opcode in word `index`.
    BadOpcode {
        /// Word position.
        index: usize,
        /// The opcode found.
        opcode: u8,
    },
    /// A field exceeded its encodable range at assembly time.
    FieldOverflow(&'static str),
    /// Program does not end with HALT.
    MissingHalt,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadOpcode { index, opcode } => {
                write!(f, "unknown opcode {opcode} at word {index}")
            }
            IsaError::FieldOverflow(field) => write!(f, "field {field} exceeds encoding range"),
            IsaError::MissingHalt => write!(f, "program does not end with HALT"),
        }
    }
}

impl std::error::Error for IsaError {}

const OP_CFG_SHAPE: u64 = 1;
const OP_CFG_DIMS: u64 = 2;
const OP_LOAD: u64 = 3;
const OP_STREAM: u64 = 4;
const OP_DRAIN: u64 = 5;
const OP_HALT: u64 = 6;

impl Instruction {
    /// Encodes to one 64-bit word.
    pub fn encode(&self) -> u64 {
        match *self {
            Instruction::CfgShape {
                kh,
                kw,
                stride,
                pad,
                c,
                m,
            } => {
                (OP_CFG_SHAPE << 60)
                    | ((kh as u64 & 0x3f) << 54)
                    | ((kw as u64 & 0x3f) << 48)
                    | ((stride as u64 & 0xf) << 44)
                    | ((pad as u64 & 0xf) << 40)
                    | ((c as u64 & 0x3fff) << 26)
                    | ((m as u64 & 0x3fff) << 12)
            }
            Instruction::CfgDims { h, w } => {
                (OP_CFG_DIMS << 60) | ((h as u64) << 44) | ((w as u64) << 28)
            }
            Instruction::Load { m_tile, c_tile } => {
                (OP_LOAD << 60) | ((m_tile as u64) << 44) | ((c_tile as u64) << 28)
            }
            Instruction::Stream { c, band } => {
                (OP_STREAM << 60) | ((c as u64) << 44) | ((band as u64) << 28)
            }
            Instruction::Drain { m_tile } => (OP_DRAIN << 60) | ((m_tile as u64) << 44),
            Instruction::Halt => OP_HALT << 60,
        }
    }

    /// Decodes one word.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadOpcode`] for unknown opcodes.
    pub fn decode(word: u64, index: usize) -> Result<Self, IsaError> {
        let field16 = |shift: u32| ((word >> shift) & 0xffff) as u16;
        match word >> 60 {
            OP_CFG_SHAPE => Ok(Instruction::CfgShape {
                kh: ((word >> 54) & 0x3f) as u8,
                kw: ((word >> 48) & 0x3f) as u8,
                stride: ((word >> 44) & 0xf) as u8,
                pad: ((word >> 40) & 0xf) as u8,
                c: ((word >> 26) & 0x3fff) as u16,
                m: ((word >> 12) & 0x3fff) as u16,
            }),
            OP_CFG_DIMS => Ok(Instruction::CfgDims {
                h: field16(44),
                w: field16(28),
            }),
            OP_LOAD => Ok(Instruction::Load {
                m_tile: field16(44),
                c_tile: field16(28),
            }),
            OP_STREAM => Ok(Instruction::Stream {
                c: field16(44),
                band: field16(28),
            }),
            OP_DRAIN => Ok(Instruction::Drain {
                m_tile: field16(44),
            }),
            OP_HALT => Ok(Instruction::Halt),
            op => Err(IsaError::BadOpcode {
                index,
                opcode: op as u8,
            }),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::CfgShape {
                kh,
                kw,
                stride,
                pad,
                c,
                m,
            } => write!(f, "cfg.shape k={kh}x{kw} s={stride} p={pad} c={c} m={m}"),
            Instruction::CfgDims { h, w } => write!(f, "cfg.dims  {h}x{w}"),
            Instruction::Load { m_tile, c_tile } => {
                write!(f, "load      mtile={m_tile} ctile={c_tile}")
            }
            Instruction::Stream { c, band } => write!(f, "stream    c={c} band={band}"),
            Instruction::Drain { m_tile } => write!(f, "drain     mtile={m_tile}"),
            Instruction::Halt => write!(f, "halt"),
        }
    }
}

/// A complete controller program for one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Assembles the program for a layer: two configuration words, then
    /// the FSM's load/stream/drain sequence, then HALT.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] for invalid shapes and
    /// [`IsaError::FieldOverflow`] (wrapped in [`CoreError::Config`])
    /// when a dimension exceeds its field width.
    pub fn assemble(
        shape: &LayerShape,
        mapping: &KernelMapping,
        kmemory_depth: usize,
    ) -> Result<Self, CoreError> {
        shape.validate()?;
        let ensure = |ok: bool, field: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(CoreError::Config(
                    IsaError::FieldOverflow(field).to_string(),
                ))
            }
        };
        ensure(shape.kh <= 63 && shape.kw <= 63, "kernel")?;
        ensure(shape.stride <= 15, "stride")?;
        ensure(shape.pad <= 15, "pad")?;
        ensure(shape.c <= 0x3fff && shape.m <= 0x3fff, "channels")?;
        ensure(shape.h <= 0xffff && shape.w <= 0xffff, "extent")?;

        let mut instructions = vec![
            Instruction::CfgShape {
                kh: shape.kh as u8,
                kw: shape.kw as u8,
                stride: shape.stride as u8,
                pad: shape.pad as u8,
                c: shape.c as u16,
                m: shape.m as u16,
            },
            Instruction::CfgDims {
                h: shape.h as u16,
                w: shape.w as u16,
            },
        ];
        let mut fsm = ControllerFsm::new(shape, mapping, kmemory_depth)?;
        loop {
            match fsm.next_step() {
                ControlStep::Done => break,
                ControlStep::LoadKernels { m_tile, c_tile } => {
                    instructions.push(Instruction::Load {
                        m_tile: m_tile as u16,
                        c_tile: c_tile as u16,
                    });
                }
                ControlStep::Pattern { c, band, .. } => {
                    instructions.push(Instruction::Stream {
                        c: c as u16,
                        band: band as u16,
                    });
                }
                ControlStep::Drain { m_tile } => {
                    instructions.push(Instruction::Drain {
                        m_tile: m_tile as u16,
                    });
                }
            }
        }
        instructions.push(Instruction::Halt);
        Ok(Program { instructions })
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Encodes to configuration words.
    pub fn encode(&self) -> Vec<u64> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Decodes a word stream.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadOpcode`] or [`IsaError::MissingHalt`].
    pub fn decode(words: &[u64]) -> Result<Self, IsaError> {
        let instructions = words
            .iter()
            .enumerate()
            .map(|(i, &w)| Instruction::decode(w, i))
            .collect::<Result<Vec<_>, _>>()?;
        if instructions.last() != Some(&Instruction::Halt) {
            return Err(IsaError::MissingHalt);
        }
        Ok(Program { instructions })
    }
}

impl fmt::Display for Program {
    /// Disassembly listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.instructions.iter().enumerate() {
            writeln!(f, "{i:>5}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_instruction_roundtrips() {
        let cases = [
            Instruction::CfgShape {
                kh: 11,
                kw: 11,
                stride: 4,
                pad: 0,
                c: 3,
                m: 96,
            },
            Instruction::CfgDims { h: 227, w: 227 },
            Instruction::Load {
                m_tile: 23,
                c_tile: 1,
            },
            Instruction::Stream { c: 255, band: 4 },
            Instruction::Drain { m_tile: 5 },
            Instruction::Halt,
        ];
        for inst in cases {
            let word = inst.encode();
            assert_eq!(Instruction::decode(word, 0).unwrap(), inst, "{inst}");
        }
    }

    #[test]
    fn program_matches_fsm_sequence() {
        let shape = LayerShape::square(2, 6, 3, 3, 1, 0);
        let mapping = KernelMapping::new(18, 3, 3).unwrap();
        let prog = Program::assemble(&shape, &mapping, 256).unwrap();
        let fsm_steps = ControllerFsm::new(&shape, &mapping, 256)
            .unwrap()
            .into_steps();
        // 2 config + fsm steps + halt.
        assert_eq!(prog.instructions().len(), 2 + fsm_steps.len() + 1);
        let streams = prog
            .instructions()
            .iter()
            .filter(|i| matches!(i, Instruction::Stream { .. }))
            .count();
        let patterns = fsm_steps
            .iter()
            .filter(|s| matches!(s, ControlStep::Pattern { .. }))
            .count();
        assert_eq!(streams, patterns);
    }

    #[test]
    fn encode_decode_program_roundtrip() {
        let shape = LayerShape::square(3, 13, 7, 3, 1, 1);
        let mapping = KernelMapping::new(36, 3, 3).unwrap();
        let prog = Program::assemble(&shape, &mapping, 2).unwrap();
        let words = prog.encode();
        assert_eq!(Program::decode(&words).unwrap(), prog);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            Program::decode(&[u64::MAX]),
            Err(IsaError::BadOpcode { .. })
        ));
        // A valid instruction without HALT.
        let w = Instruction::Drain { m_tile: 0 }.encode();
        assert_eq!(Program::decode(&[w]), Err(IsaError::MissingHalt));
    }

    #[test]
    fn assemble_rejects_oversized_fields() {
        let mut shape = LayerShape::square(1, 64, 1, 3, 1, 0);
        shape.c = 0x4000;
        let mapping = KernelMapping::new(9, 3, 3).unwrap();
        assert!(Program::assemble(&shape, &mapping, 256).is_err());
    }

    #[test]
    fn disassembly_readable() {
        let shape = LayerShape::square(1, 6, 1, 3, 1, 0);
        let mapping = KernelMapping::new(9, 3, 3).unwrap();
        let prog = Program::assemble(&shape, &mapping, 256).unwrap();
        let listing = prog.to_string();
        assert!(listing.contains("cfg.shape"));
        assert!(listing.contains("stream"));
        assert!(listing.trim_end().ends_with("halt"));
    }

    #[test]
    fn alexnet_conv3_program_size() {
        // Program length = 2 cfg + m_tiles·(load + C·bands·stream + drain) + halt.
        let shape = LayerShape::square(256, 13, 384, 3, 1, 1);
        let mapping = KernelMapping::new(576, 3, 3).unwrap();
        let prog = Program::assemble(&shape, &mapping, 256).unwrap();
        let expect = 2 + 6 * (1 + 256 * 5 + 1) + 1;
        assert_eq!(prog.instructions().len(), expect);
    }
}
