//! The column-wise scan input pattern (paper Fig. 5) in closed form.
//!
//! # Derivation
//!
//! For a `kh×kw` kernel at stride 1, a *pattern* processes `kh` adjacent
//! ofmap rows at once and streams `2·kh−1` ifmap rows column by column.
//! Pattern pixel `(i, j)` (row `i ∈ [0, 2kh−1)`, column `j`) enters the
//! chain at timestamp
//!
//! ```text
//! t(i, j) = kh·j + i + 1                                   (1-based)
//! ```
//!
//! which reproduces the timestamps printed inside Fig. 5(b) for K = 3.
//! Two pixels share every timestamp `t` — with `r = (t−1) mod kh` and
//! `q = (t−1) div kh`, they are `(r, q)` and `(r+kh, q−1)` — and they
//! always lie in adjacent columns, so a two-channel feed with columns
//! split by parity (OddIF/EvenIF) carries them conflict-free.
//!
//! The window for ofmap position `(d, c)` (row-in-band `d`, column `c`)
//! consists of the pixels entering at the `kh·kw` *consecutive* timestamps
//! `kh·c + d + 1 … kh·c + d + kh·kw` in column-major window order — this
//! is the paper's "matching" property: once warm-up ends, every timestamp
//! completes one window.
//!
//! Each PE must multiply its stationary weight by the window element with
//! its own index, which pins down the **channel-select (mux) rule**: PE
//! `p` (chain index) looking at the pixels of timestamp `τ` needs the one
//! whose pattern row `i` satisfies `i − (p mod kh) ∈ [0, kh)`; hence it
//! selects `(r, q)` when `r ≥ p mod kh` and `(r+kh, q−1)` otherwise.
//! Lane identity follows from column parity. The same structure with a
//! single channel can only complete one window every `kh` timestamps
//! (Fig. 5(a)) — [`SingleChannelSchedule`] implements that variant for
//! the ablation study.

use std::fmt;

use crate::{CoreError, LayerShape};

/// One of the two ifmap channels threaded through the chain (Fig. 6).
///
/// `Odd` carries the first, third, … pattern columns (0-based even
/// indices — the paper counts columns from 1) and `Even` the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// The OddIF channel (pattern columns 0, 2, 4, … 0-based).
    Odd,
    /// The EvenIF channel (pattern columns 1, 3, 5, … 0-based).
    Even,
}

impl Lane {
    /// Lane that carries pattern column `j`.
    pub fn of_column(j: usize) -> Lane {
        if j.is_multiple_of(2) {
            Lane::Odd
        } else {
            Lane::Even
        }
    }

    /// 0 for `Odd`, 1 for `Even` — index into per-lane register arrays.
    pub fn index(self) -> usize {
        match self {
            Lane::Odd => 0,
            Lane::Even => 1,
        }
    }
}

/// A pixel position within the current pattern (row-in-pattern, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternPixel {
    /// Row within the streamed pattern band (0-based).
    pub row: usize,
    /// Pattern column (0-based, padded image coordinates).
    pub col: usize,
}

/// A completed output slot emitted by a primitive's tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitSlot {
    /// Ofmap row within the band (0-based; always 0 for single-channel).
    pub row_in_band: usize,
    /// Ofmap column.
    pub col: usize,
}

/// An input schedule: what enters each lane at each timestamp, which lane
/// each PE's mux selects, and which output slot each tail position
/// corresponds to.
///
/// Implemented by [`DualChannelSchedule`] (the paper's design) and
/// [`SingleChannelSchedule`] (the 1/K-throughput strawman of Fig. 5(a)).
pub trait InputSchedule: fmt::Debug {
    /// Column period: timestamps per pattern column (= kernel rows).
    fn kh(&self) -> usize;

    /// Ifmap rows streamed per pattern.
    fn pattern_rows(&self) -> usize;

    /// Ofmap rows completed per pattern (kh for dual, 1 for single).
    fn rows_per_band(&self) -> usize;

    /// Number of feed lanes in use (2 or 1).
    fn lanes(&self) -> usize;

    /// Timestamps in one pattern (feed phase only, no drain).
    fn duration(&self) -> usize;

    /// Pixels entering at (1-based) timestamp `t`, indexed by lane.
    fn feed(&self, t: usize) -> [Option<PatternPixel>; 2];

    /// The lane PE `p` (global chain index) selects for the pixel pair of
    /// timestamp `τ`. `τ ≤ 0` occurs during pipeline fill; any lane is
    /// acceptable then (the outputs are discarded).
    fn select(&self, p: usize, tau: i64) -> Lane;

    /// Maps a tail position `u = kh·col + row_in_band` to the output slot
    /// it completes, if any. `out_w` bounds the valid columns.
    fn emit(&self, u: i64, out_w: usize) -> Option<EmitSlot>;
}

/// The paper's dual-channel column-wise scan pattern for stride-1
/// convolutions.
///
/// # Example
///
/// ```
/// use chain_nn_core::schedule::{DualChannelSchedule, InputSchedule, Lane};
/// // K=3 over a 5-column pattern, as in Fig. 5(b).
/// let s = DualChannelSchedule::new(3, 3, 5).unwrap();
/// assert_eq!(s.duration(), 17);           // 3·5 + 2
/// // Timestamp 1 carries only the first pixel of column 0.
/// let f = s.feed(1);
/// assert_eq!(f[Lane::Odd.index()].unwrap().row, 0);
/// assert!(f[Lane::Even.index()].is_none());
/// // Timestamp 4 carries (0,1) on Even and (3,0) on Odd.
/// let f = s.feed(4);
/// assert_eq!(f[Lane::Even.index()].unwrap().col, 1);
/// assert_eq!(f[Lane::Odd.index()].unwrap().row, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DualChannelSchedule {
    kh: usize,
    kw: usize,
    width: usize,
}

impl DualChannelSchedule {
    /// Builds the schedule for a `kh×kw` kernel over a pattern of
    /// `width` (padded) columns.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for zero extents or `width < kw`.
    pub fn new(kh: usize, kw: usize, width: usize) -> Result<Self, CoreError> {
        if kh == 0 || kw == 0 || width == 0 {
            return Err(CoreError::Shape("schedule extents must be non-zero".into()));
        }
        if width < kw {
            return Err(CoreError::Shape(format!(
                "pattern width {width} narrower than kernel {kw}"
            )));
        }
        Ok(DualChannelSchedule { kh, kw, width })
    }

    /// Builds the schedule for a validated stride-1 layer shape.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnsupportedStride`] for `stride != 1` (use
    /// [`polyphase`](crate::polyphase)) or [`CoreError::Shape`] from
    /// shape validation.
    pub fn for_shape(shape: &LayerShape) -> Result<Self, CoreError> {
        shape.validate()?;
        if shape.stride != 1 {
            return Err(CoreError::UnsupportedStride {
                stride: shape.stride,
            });
        }
        DualChannelSchedule::new(shape.kh, shape.kw, shape.padded_w())
    }
}

impl InputSchedule for DualChannelSchedule {
    fn kh(&self) -> usize {
        self.kh
    }

    fn pattern_rows(&self) -> usize {
        2 * self.kh - 1
    }

    fn rows_per_band(&self) -> usize {
        self.kh
    }

    fn lanes(&self) -> usize {
        2
    }

    fn duration(&self) -> usize {
        // Column W−1 spans timestamps kh·(W−1)+1 … kh·(W−1)+2kh−1.
        self.kh * self.width + self.kh - 1
    }

    fn feed(&self, t: usize) -> [Option<PatternPixel>; 2] {
        let mut out = [None, None];
        if t == 0 {
            return out;
        }
        let r = (t - 1) % self.kh;
        let q = (t - 1) / self.kh;
        // Shallow pixel (r, q).
        if q < self.width {
            out[Lane::of_column(q).index()] = Some(PatternPixel { row: r, col: q });
        }
        // Deep pixel (r + kh, q − 1); rows r+kh must stay within the
        // 2kh−1 pattern rows, i.e. r ≤ kh−2.
        if q >= 1 && r + 1 < self.kh {
            out[Lane::of_column(q - 1).index()] = Some(PatternPixel {
                row: r + self.kh,
                col: q - 1,
            });
        }
        out
    }

    fn select(&self, p: usize, tau: i64) -> Lane {
        if tau < 1 {
            return Lane::Odd;
        }
        let kh = self.kh as i64;
        let r = (tau - 1).rem_euclid(kh);
        let q = (tau - 1).div_euclid(kh);
        let pk = (p % self.kh) as i64;
        if r >= pk {
            // Shallow pixel lives on lane parity(q).
            Lane::of_column(q.rem_euclid(2) as usize)
        } else {
            // Deep pixel lives on the opposite parity (column q−1).
            Lane::of_column((q + 1).rem_euclid(2) as usize)
        }
    }

    fn emit(&self, u: i64, out_w: usize) -> Option<EmitSlot> {
        if u < 0 {
            return None;
        }
        let kh = self.kh as i64;
        let d = (u % kh) as usize;
        let col = (u / kh) as usize;
        (col < out_w).then_some(EmitSlot {
            row_in_band: d,
            col,
        })
    }
}

/// The single-channel strawman of Fig. 5(a): one ifmap channel, one ofmap
/// row per pattern, one valid output every `kh` cycles (1/K of peak).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleChannelSchedule {
    kh: usize,
    kw: usize,
    width: usize,
}

impl SingleChannelSchedule {
    /// Builds the schedule for a `kh×kw` kernel over `width` padded
    /// columns.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] for zero extents or `width < kw`.
    pub fn new(kh: usize, kw: usize, width: usize) -> Result<Self, CoreError> {
        if kh == 0 || kw == 0 || width == 0 {
            return Err(CoreError::Shape("schedule extents must be non-zero".into()));
        }
        if width < kw {
            return Err(CoreError::Shape(format!(
                "pattern width {width} narrower than kernel {kw}"
            )));
        }
        Ok(SingleChannelSchedule { kh, kw, width })
    }

    /// Builds the schedule for a validated stride-1 layer shape.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DualChannelSchedule::for_shape`].
    pub fn for_shape(shape: &LayerShape) -> Result<Self, CoreError> {
        shape.validate()?;
        if shape.stride != 1 {
            return Err(CoreError::UnsupportedStride {
                stride: shape.stride,
            });
        }
        SingleChannelSchedule::new(shape.kh, shape.kw, shape.padded_w())
    }
}

impl InputSchedule for SingleChannelSchedule {
    fn kh(&self) -> usize {
        self.kh
    }

    fn pattern_rows(&self) -> usize {
        self.kh
    }

    fn rows_per_band(&self) -> usize {
        1
    }

    fn lanes(&self) -> usize {
        1
    }

    fn duration(&self) -> usize {
        self.kh * self.width
    }

    fn feed(&self, t: usize) -> [Option<PatternPixel>; 2] {
        let mut out = [None, None];
        if t == 0 {
            return out;
        }
        let r = (t - 1) % self.kh;
        let q = (t - 1) / self.kh;
        if q < self.width {
            out[Lane::Odd.index()] = Some(PatternPixel { row: r, col: q });
        }
        out
    }

    fn select(&self, _p: usize, _tau: i64) -> Lane {
        Lane::Odd
    }

    fn emit(&self, u: i64, out_w: usize) -> Option<EmitSlot> {
        if u < 0 || u % self.kh as i64 != 0 {
            return None;
        }
        let col = (u / self.kh as i64) as usize;
        (col < out_w).then_some(EmitSlot {
            row_in_band: 0,
            col,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Every pattern pixel is fed exactly once, on the lane of its
    /// column's parity.
    #[test]
    fn dual_feed_is_a_bijection() {
        for (kh, kw, w) in [(3, 3, 7), (2, 2, 5), (5, 5, 9), (3, 2, 4), (1, 1, 3)] {
            let s = DualChannelSchedule::new(kh, kw, w).unwrap();
            let mut seen: HashMap<(usize, usize), usize> = HashMap::new();
            for t in 1..=s.duration() {
                for (lane_idx, px) in s.feed(t).iter().enumerate() {
                    if let Some(px) = px {
                        assert_eq!(
                            Lane::of_column(px.col).index(),
                            lane_idx,
                            "pixel {px:?} on wrong lane"
                        );
                        assert!(px.row < s.pattern_rows());
                        assert!(px.col < w);
                        *seen.entry((px.row, px.col)).or_insert(0) += 1;
                    }
                }
            }
            for i in 0..s.pattern_rows() {
                for j in 0..w {
                    assert_eq!(
                        seen.get(&(i, j)).copied().unwrap_or(0),
                        1,
                        "kh={kh} w={w}: pixel ({i},{j}) fed wrong number of times"
                    );
                }
            }
            assert_eq!(seen.len(), s.pattern_rows() * w);
        }
    }

    /// The timestamps match the closed form t = kh·j + i + 1 — i.e. the
    /// numbers printed in the paper's Fig. 5(b) for K = 3.
    #[test]
    fn dual_feed_matches_figure_5b_timestamps() {
        let s = DualChannelSchedule::new(3, 3, 8).unwrap();
        for t in 1..=s.duration() {
            for px in s.feed(t).into_iter().flatten() {
                assert_eq!(t, 3 * px.col + px.row + 1);
            }
        }
        // Fig. 5(b), first column: timestamps 1..5; second column: 4..8.
        assert_eq!(
            s.feed(4)[Lane::Even.index()],
            Some(PatternPixel { row: 0, col: 1 })
        );
        assert_eq!(
            s.feed(5)[Lane::Odd.index()],
            Some(PatternPixel { row: 4, col: 0 })
        );
    }

    /// At most one pixel per lane per timestamp (no channel conflicts) —
    /// the property that makes two channels sufficient.
    #[test]
    fn dual_feed_never_conflicts() {
        let s = DualChannelSchedule::new(4, 4, 9).unwrap();
        for t in 1..=s.duration() + 5 {
            let f = s.feed(t);
            // feed() returning an array indexed by lane already encodes
            // one-per-lane; check the two pixels differ when both present.
            if let (Some(a), Some(b)) = (f[0], f[1]) {
                assert_ne!((a.row, a.col), (b.row, b.col));
                assert_eq!((a.col as i64 - b.col as i64).abs(), 1);
            }
        }
    }

    /// The mux rule hands PE p exactly the window element it owns: for
    /// every window (d, c) and element e, at timestamp τ = kh·c + d + 1 + e
    /// the pixel selected by `select(e, τ)` is (d + e % kh, c + e / kh).
    #[test]
    fn mux_selects_window_elements_in_column_scan_order() {
        for (kh, kw, w) in [(3, 3, 7), (2, 3, 6), (5, 5, 11), (4, 2, 8)] {
            let s = DualChannelSchedule::new(kh, kw, w).unwrap();
            let e_cols = w - kw + 1;
            for d in 0..kh {
                for c in 0..e_cols {
                    for e in 0..kh * kw {
                        let tau = (kh * c + d + 1 + e) as i64;
                        let want = PatternPixel {
                            row: d + e % kh,
                            col: c + e / kh,
                        };
                        let lane = s.select(e, tau);
                        let fed = s.feed(tau as usize)[lane.index()];
                        assert_eq!(fed, Some(want), "kh={kh} kw={kw} window ({d},{c}) elem {e}");
                    }
                }
            }
        }
    }

    /// PEs beyond the first primitive (p >= kh·kw) use the same rule via
    /// p mod kh.
    #[test]
    fn mux_rule_periodic_in_pe_index() {
        let s = DualChannelSchedule::new(3, 3, 6).unwrap();
        for p in 0..36 {
            for tau in 1..=s.duration() as i64 {
                assert_eq!(s.select(p, tau), s.select(p % 3, tau));
            }
        }
    }

    #[test]
    fn emit_walks_bands_column_major() {
        let s = DualChannelSchedule::new(3, 3, 7).unwrap();
        assert_eq!(
            s.emit(0, 5),
            Some(EmitSlot {
                row_in_band: 0,
                col: 0
            })
        );
        assert_eq!(
            s.emit(4, 5),
            Some(EmitSlot {
                row_in_band: 1,
                col: 1
            })
        );
        assert_eq!(s.emit(-1, 5), None);
        // col = 5 is out of range for out_w = 5
        assert_eq!(s.emit(15, 5), None);
    }

    #[test]
    fn single_channel_feeds_one_lane_and_emits_every_kh() {
        let s = SingleChannelSchedule::new(3, 3, 5).unwrap();
        assert_eq!(s.duration(), 15);
        assert_eq!(s.lanes(), 1);
        for t in 1..=s.duration() {
            let f = s.feed(t);
            assert!(f[Lane::Even.index()].is_none());
            assert!(f[Lane::Odd.index()].is_some());
        }
        let emitted: Vec<_> = (0..15).filter_map(|u| s.emit(u, 3)).collect();
        assert_eq!(emitted.len(), 3);
        assert!(emitted.iter().all(|e| e.row_in_band == 0));
        assert_eq!(emitted[2].col, 2);
    }

    #[test]
    fn schedules_validate_inputs() {
        assert!(DualChannelSchedule::new(0, 3, 5).is_err());
        assert!(DualChannelSchedule::new(3, 3, 2).is_err());
        assert!(SingleChannelSchedule::new(3, 0, 5).is_err());
        let mut shape = LayerShape::square(1, 8, 1, 3, 1, 0);
        shape.stride = 2;
        assert!(matches!(
            DualChannelSchedule::for_shape(&shape),
            Err(CoreError::UnsupportedStride { stride: 2 })
        ));
    }

    #[test]
    fn input_bandwidth_is_two_pixels_per_cycle_amortized() {
        // Paper §IV.B: invariant input bandwidth regardless of K.
        for k in [2usize, 3, 5, 7] {
            let w = 4 * k;
            let s = DualChannelSchedule::new(k, k, w).unwrap();
            let pixels: usize = (1..=s.duration())
                .map(|t| s.feed(t).iter().flatten().count())
                .sum();
            let rate = pixels as f64 / s.duration() as f64;
            // Sustained rate is (2K−1)/K ≈ 2 pixels/cycle, never more.
            let sustained = (2 * k - 1) as f64 / k as f64;
            assert!(
                rate > 0.93 * sustained && rate <= 2.0,
                "K={k}: feed rate {rate} vs sustained {sustained}"
            );
        }
    }
}
