//! Chain instantiation parameters.

use crate::{CoreError, KernelMapping};

/// Word width of operands on the chain (the paper's 16-bit fixed point).
pub const OPERAND_BITS: u32 = 16;

/// Parameters of one Chain-NN instance.
///
/// Build with [`ChainConfig::builder`] or use the paper's instance
/// [`ChainConfig::paper_576`]: 576 PEs, 700 MHz, 3 pipeline stages,
/// 256-weight kMemory per PE.
///
/// # Example
///
/// ```
/// use chain_nn_core::ChainConfig;
/// let cfg = ChainConfig::paper_576();
/// assert_eq!(cfg.num_pes(), 576);
/// assert_eq!(cfg.peak_gops(), 806.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainConfig {
    num_pes: usize,
    freq_mhz: f64,
    kmemory_depth: usize,
    pipeline_stages: usize,
}

impl ChainConfig {
    /// The paper's 576-PE instance (§V.B): 700 MHz after 3-stage MAC
    /// pipelining, 256 kernel weights per PE (295 KB kMemory total).
    pub fn paper_576() -> Self {
        ChainConfig {
            num_pes: 576,
            freq_mhz: 700.0,
            kmemory_depth: 256,
            pipeline_stages: 3,
        }
    }

    /// Starts building a custom configuration (defaults match
    /// [`ChainConfig::paper_576`] except for the PE count, which must be
    /// chosen deliberately).
    pub fn builder() -> ChainConfigBuilder {
        ChainConfigBuilder::default()
    }

    /// Number of PEs in the chain.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Core clock frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// Kernel weights stored per PE.
    pub fn kmemory_depth(&self) -> usize {
        self.kmemory_depth
    }

    /// MAC pipeline depth (the paper pipelines each PE into 3 stages to
    /// reach 700 MHz).
    pub fn pipeline_stages(&self) -> usize {
        self.pipeline_stages
    }

    /// Peak throughput in GOPS, counting each MAC as 2 operations:
    /// `num_pes · 2 · f`.
    pub fn peak_gops(&self) -> f64 {
        self.num_pes as f64 * 2.0 * self.freq_mhz / 1e3
    }

    /// Total kMemory capacity in bytes (16-bit weights).
    pub fn kmemory_bytes(&self) -> usize {
        self.num_pes * self.kmemory_depth * (OPERAND_BITS as usize / 8)
    }

    /// Partitions the chain for a square K×K kernel.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::KernelTooLargeForChain`] when K² exceeds the
    /// chain length.
    pub fn map_kernel(&self, k: usize) -> Result<KernelMapping, CoreError> {
        KernelMapping::new(self.num_pes, k, k)
    }

    /// Partitions the chain for a rectangular `kh×kw` kernel (used by the
    /// polyphase decomposition).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::KernelTooLargeForChain`] when `kh·kw` exceeds
    /// the chain length.
    pub fn map_kernel_rect(&self, kh: usize, kw: usize) -> Result<KernelMapping, CoreError> {
        KernelMapping::new(self.num_pes, kh, kw)
    }
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig::paper_576()
    }
}

/// Builder for [`ChainConfig`].
///
/// # Example
///
/// ```
/// use chain_nn_core::ChainConfig;
/// let cfg = ChainConfig::builder()
///     .num_pes(144)
///     .freq_mhz(500.0)
///     .kmemory_depth(64)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.peak_gops(), 144.0);
/// ```
#[derive(Debug, Clone)]
pub struct ChainConfigBuilder {
    num_pes: usize,
    freq_mhz: f64,
    kmemory_depth: usize,
    pipeline_stages: usize,
}

impl Default for ChainConfigBuilder {
    fn default() -> Self {
        ChainConfigBuilder {
            num_pes: 576,
            freq_mhz: 700.0,
            kmemory_depth: 256,
            pipeline_stages: 3,
        }
    }
}

impl ChainConfigBuilder {
    /// Sets the chain length in PEs.
    pub fn num_pes(&mut self, n: usize) -> &mut Self {
        self.num_pes = n;
        self
    }

    /// Sets the clock frequency in MHz.
    pub fn freq_mhz(&mut self, f: f64) -> &mut Self {
        self.freq_mhz = f;
        self
    }

    /// Sets the kMemory depth (weights per PE).
    pub fn kmemory_depth(&mut self, d: usize) -> &mut Self {
        self.kmemory_depth = d;
        self
    }

    /// Sets the MAC pipeline depth.
    pub fn pipeline_stages(&mut self, s: usize) -> &mut Self {
        self.pipeline_stages = s;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] if any parameter is zero or the
    /// frequency is not finite and positive.
    pub fn build(&self) -> Result<ChainConfig, CoreError> {
        if self.num_pes == 0 {
            return Err(CoreError::Config("num_pes must be non-zero".into()));
        }
        if !(self.freq_mhz.is_finite() && self.freq_mhz > 0.0) {
            return Err(CoreError::Config(format!(
                "freq_mhz must be positive and finite, got {}",
                self.freq_mhz
            )));
        }
        if self.kmemory_depth == 0 {
            return Err(CoreError::Config("kmemory_depth must be non-zero".into()));
        }
        if self.pipeline_stages == 0 {
            return Err(CoreError::Config("pipeline_stages must be non-zero".into()));
        }
        Ok(ChainConfig {
            num_pes: self.num_pes,
            freq_mhz: self.freq_mhz,
            kmemory_depth: self.kmemory_depth,
            pipeline_stages: self.pipeline_stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_headline_numbers() {
        let cfg = ChainConfig::paper_576();
        // §V.B: "a peak throughput of 806.4GOPS" at 700 MHz.
        assert_eq!(cfg.peak_gops(), 806.4);
        // §V.B: 295 KB of kMemory = 576 PEs x 256 weights x 2 B = 294912 B.
        assert_eq!(cfg.kmemory_bytes(), 294_912);
        assert_eq!(cfg, ChainConfig::default());
    }

    #[test]
    fn builder_validates() {
        assert!(ChainConfig::builder().num_pes(0).build().is_err());
        assert!(ChainConfig::builder().freq_mhz(-1.0).build().is_err());
        assert!(ChainConfig::builder().freq_mhz(f64::NAN).build().is_err());
        assert!(ChainConfig::builder().kmemory_depth(0).build().is_err());
        assert!(ChainConfig::builder().pipeline_stages(0).build().is_err());
        assert!(ChainConfig::builder().num_pes(9).build().is_ok());
    }

    #[test]
    fn map_kernel_errors_when_too_large() {
        let cfg = ChainConfig::builder().num_pes(8).build().unwrap();
        assert!(matches!(
            cfg.map_kernel(3),
            Err(CoreError::KernelTooLargeForChain {
                needed: 9,
                available: 8
            })
        ));
    }
}
