//! Critical-path timing model: pipeline depth ↔ clock frequency.
//!
//! The paper pipelines each PE "into three stages so that the critical
//! path delay is reduced to 1.428 ns (700 MHz)" (§V.B) and notes that
//! deeper pipelining is a free knob of the 1D organization. This model
//! captures that tradeoff with a classic two-term delay: the MAC logic
//! (multiplier + adder + mux) divides across stages, the register
//! overhead (setup + clock-to-Q + skew margin) does not.
//!
//! ```text
//! T(stages) = logic_ps / stages + reg_overhead_ps
//! ```
//!
//! Constants are fitted so 3 stages lands exactly on the paper's
//! 1.428 ns; the resulting 1-stage (≈270 MHz) and deeper points are
//! consistent with 28 nm 16-bit MAC datapaths.

use crate::{ChainConfig, CoreError};

/// Delay model of the PE's MAC path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Combinational delay of the full MAC path (multiplier + adder +
    /// channel mux), in picoseconds.
    pub logic_ps: f64,
    /// Per-stage sequential overhead (FF setup + clock-to-Q + margin),
    /// in picoseconds.
    pub reg_overhead_ps: f64,
}

impl TimingModel {
    /// Constants fitted to the paper's 3-stage / 1.428 ns point at
    /// TSMC 28 nm slow corner (0.81 V, 125 °C, as synthesized).
    pub fn fitted_28nm() -> Self {
        TimingModel {
            logic_ps: 3_420.0,
            reg_overhead_ps: 288.0,
        }
    }

    /// Critical path at `stages` pipeline stages, in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` — configurations are validated upstream
    /// by [`ChainConfigBuilder`](crate::ChainConfigBuilder).
    pub fn critical_path_ps(&self, stages: usize) -> f64 {
        assert!(stages > 0, "pipeline depth must be non-zero");
        self.logic_ps / stages as f64 + self.reg_overhead_ps
    }

    /// Maximum clock frequency at `stages`, in MHz.
    pub fn max_freq_mhz(&self, stages: usize) -> f64 {
        1e6 / self.critical_path_ps(stages)
    }

    /// Rebuilds `cfg` at `stages` pipeline stages running at the
    /// model's maximum frequency — the knob the design-space ablation
    /// sweeps.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::Config`] from the builder.
    pub fn config_at_stages(
        &self,
        cfg: &ChainConfig,
        stages: usize,
    ) -> Result<ChainConfig, CoreError> {
        ChainConfig::builder()
            .num_pes(cfg.num_pes())
            .kmemory_depth(cfg.kmemory_depth())
            .pipeline_stages(stages)
            .freq_mhz(self.max_freq_mhz(stages))
            .build()
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::fitted_28nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_reproduced() {
        let t = TimingModel::fitted_28nm();
        // §V.B: 3 stages -> 1.428 ns -> 700 MHz.
        assert!((t.critical_path_ps(3) - 1_428.0).abs() < 1.0);
        assert!((t.max_freq_mhz(3) - 700.0).abs() < 1.0);
    }

    #[test]
    fn frequency_monotone_with_depth_but_saturating() {
        let t = TimingModel::fitted_28nm();
        let f: Vec<f64> = (1..=8).map(|s| t.max_freq_mhz(s)).collect();
        for w in f.windows(2) {
            assert!(w[1] > w[0], "deeper pipeline must not be slower");
        }
        // Diminishing returns: stage 8 gains less than 2x over stage 3.
        assert!(f[7] / f[2] < 2.0);
        // Register overhead bounds the asymptote.
        assert!(f[7] < 1e6 / t.reg_overhead_ps);
    }

    #[test]
    fn config_rebuild_carries_structure() {
        let t = TimingModel::fitted_28nm();
        let base = ChainConfig::paper_576();
        let deep = t.config_at_stages(&base, 5).expect("valid");
        assert_eq!(deep.num_pes(), 576);
        assert_eq!(deep.pipeline_stages(), 5);
        assert!(deep.freq_mhz() > 700.0);
        assert!(deep.peak_gops() > base.peak_gops());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_stages_rejected() {
        let _ = TimingModel::fitted_28nm().critical_path_ps(0);
    }
}
