//! Cycle-accurate simulation of a convolutional layer on the chain.
//!
//! [`ChainSim`] executes the [`ControllerFsm`]'s control steps on a
//! [`Chain`]: kernels are written into kMemory (serially, one weight per
//! cycle, as the paper's 0.05–1.23 ms load phases imply), then each
//! pattern streams the column-wise scan feed through the chain while
//! primitive tails emit window sums that accumulate into the ofmaps
//! (read-modify-write per input channel, like oMemory).
//!
//! ## Cycle accounting
//!
//! Patterns are simulated in isolation (pipeline flushed in between) but
//! *charged* as the real hardware overlaps them: each pattern costs its
//! feed duration `kh·W + kh − 1`, and one pipeline drain of
//! `primitives·kh·kw` cycles is charged per kernel tile (when streaming
//! must stop before the next kMemory load). The
//! [`perf`](crate::perf) strict model reproduces these counts exactly and
//! is tested against the simulator.
//!
//! ## Verification
//!
//! Outputs are bit-exact against
//! [`conv2d_fix`](chain_nn_tensor::conv::conv2d_fix) (wrapping mode) —
//! the reproduction's analogue of the paper's on-the-fly ModelSim vs
//! float-to-fix-simulator check.

use chain_nn_fixed::Fix16;
use chain_nn_tensor::Tensor;

use crate::chain::Chain;
use crate::fsm::{ControlStep, ControllerFsm};
use crate::schedule::{DualChannelSchedule, InputSchedule, SingleChannelSchedule};
use crate::{ChainConfig, CoreError, KernelMapping, LayerShape};

/// Which input-channel scheme drives the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelMode {
    /// The paper's dual-channel column-wise scan (full utilization).
    #[default]
    Dual,
    /// The single-channel strawman of Fig. 5(a) (1/K utilization) — used
    /// by the ablation study.
    Single,
}

/// Counters accumulated over a simulated layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Cycles spent streaming patterns (feed phases).
    pub stream_cycles: u64,
    /// Cycles spent draining the pipeline before kernel reloads.
    pub drain_cycles: u64,
    /// Cycles spent loading kernels (one weight per cycle).
    pub load_cycles: u64,
    /// iMemory reads: pixels fed into the lanes.
    pub imem_reads: u64,
    /// kMemory reads: working-weight latches (one per PE per pattern).
    pub kmem_reads: u64,
    /// oMemory accesses: one read + one write per accumulated output.
    pub omem_accesses: u64,
    /// Convolution windows committed to the ofmaps.
    pub valid_outputs: u64,
    /// Useful multiply-accumulates (windows × kernel size).
    pub mac_ops: u64,
}

impl RunStats {
    /// Total cycles: stream + drain + load.
    pub fn total_cycles(&self) -> u64 {
        self.stream_cycles + self.drain_cycles + self.load_cycles
    }

    /// Fraction of PE-cycles doing useful MACs, over `num_pes` PEs.
    pub fn utilization(&self, num_pes: usize) -> f64 {
        let denom = (num_pes as u64 * self.total_cycles()) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        self.mac_ops as f64 / denom
    }
}

/// Result of simulating one layer.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Raw 32-bit accumulator ofmaps, shaped N×M×E×E.
    pub ofmaps: Tensor<i32>,
    /// Cycle and access counters.
    pub stats: RunStats,
    /// The kernel mapping used (primitives, active PEs).
    pub mapping: KernelMapping,
}

impl RunReport {
    /// Wall-clock seconds at frequency `freq_mhz`.
    pub fn seconds_at(&self, freq_mhz: f64) -> f64 {
        self.stats.total_cycles() as f64 / (freq_mhz * 1e6)
    }
}

/// Cycle-accurate simulator for one chain configuration.
///
/// See the [crate example](crate) for end-to-end usage.
#[derive(Debug, Clone)]
pub struct ChainSim {
    cfg: ChainConfig,
}

impl ChainSim {
    /// Creates a simulator for `cfg`.
    pub fn new(cfg: ChainConfig) -> Self {
        ChainSim { cfg }
    }

    /// The simulated configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.cfg
    }

    /// Runs a stride-1 layer with the dual-channel schedule.
    ///
    /// `ifmap` is N×C×H×W (each image processed independently, kernels
    /// reloaded per image — batch amortization is modeled analytically in
    /// [`perf`](crate::perf)); `weights` is M×C×KH×KW.
    ///
    /// # Errors
    ///
    /// * [`CoreError::UnsupportedStride`] for `stride != 1` — use
    ///   [`polyphase`](crate::polyphase).
    /// * [`CoreError::DataMismatch`] when tensor extents disagree with
    ///   `shape`.
    /// * [`CoreError::KernelTooLargeForChain`] when `kh·kw` exceeds the
    ///   chain.
    pub fn run_layer(
        &self,
        shape: &LayerShape,
        ifmap: &Tensor<Fix16>,
        weights: &Tensor<Fix16>,
    ) -> Result<RunReport, CoreError> {
        self.run_layer_with(shape, ifmap, weights, ChannelMode::Dual)
    }

    /// Runs a stride-1 layer under an explicit [`ChannelMode`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChainSim::run_layer`].
    pub fn run_layer_with(
        &self,
        shape: &LayerShape,
        ifmap: &Tensor<Fix16>,
        weights: &Tensor<Fix16>,
        mode: ChannelMode,
    ) -> Result<RunReport, CoreError> {
        match mode {
            ChannelMode::Dual => {
                let s = DualChannelSchedule::for_shape(shape)?;
                self.run_with_schedule(shape, ifmap, weights, &s)
            }
            ChannelMode::Single => {
                let s = SingleChannelSchedule::for_shape(shape)?;
                self.run_with_schedule(shape, ifmap, weights, &s)
            }
        }
    }

    fn check_tensors(
        &self,
        shape: &LayerShape,
        ifmap: &Tensor<Fix16>,
        weights: &Tensor<Fix16>,
    ) -> Result<(), CoreError> {
        let idims = ifmap.shape().dims();
        if idims[1] != shape.c || idims[2] != shape.h || idims[3] != shape.w {
            return Err(CoreError::DataMismatch(format!(
                "ifmap {}x{}x{} vs shape C={} {}x{}",
                idims[1], idims[2], idims[3], shape.c, shape.h, shape.w
            )));
        }
        let wdims = weights.shape().dims();
        if wdims != [shape.m, shape.c, shape.kh, shape.kw] {
            return Err(CoreError::DataMismatch(format!(
                "weights {}x{}x{}x{} vs shape M={} C={} K={}x{}",
                wdims[0], wdims[1], wdims[2], wdims[3], shape.m, shape.c, shape.kh, shape.kw
            )));
        }
        Ok(())
    }

    fn run_with_schedule<S: InputSchedule>(
        &self,
        shape: &LayerShape,
        ifmap: &Tensor<Fix16>,
        weights: &Tensor<Fix16>,
        schedule: &S,
    ) -> Result<RunReport, CoreError> {
        shape.validate()?;
        self.check_tensors(shape, ifmap, weights)?;
        let mapping = KernelMapping::new(self.cfg.num_pes(), shape.kh, shape.kw)?;
        let prims = mapping.num_primitives();
        let p = mapping.pes_per_primitive();
        let depth = self.cfg.kmemory_depth();
        let mut chain = Chain::new(prims, p, depth.min(shape.c).max(1))?;
        let c_per_tile = depth.min(shape.c);

        let batch = ifmap.shape().n();
        let out_h = shape.out_h();
        let out_w = shape.out_w();
        let mut ofmaps = Tensor::<i32>::zeros([batch, shape.m, out_h, out_w]);
        let mut stats = RunStats::default();

        let duration = schedule.duration() as u64;
        let pad = shape.pad as isize;

        for n in 0..batch {
            let mut fsm = ControllerFsm::with_rows_per_band(
                shape,
                &mapping,
                depth,
                schedule.rows_per_band(),
            )?;
            loop {
                match fsm.next_step() {
                    ControlStep::Done => break,
                    ControlStep::LoadKernels { m_tile, c_tile } => {
                        let active = mapping.primitives_in_tile(shape.m, m_tile);
                        let channels = fsm.channels_in_tile(c_tile);
                        for g in 0..active {
                            let m = m_tile * prims + g;
                            for slot in 0..channels {
                                let c = c_tile * c_per_tile + slot;
                                for pe in 0..p {
                                    let w = weights.get(m, c, pe % shape.kh, pe / shape.kh);
                                    chain.write_weight(g * p + pe, slot, w)?;
                                }
                                stats.load_cycles += p as u64;
                            }
                        }
                    }
                    ControlStep::Pattern { m_tile, c, band } => {
                        let active = mapping.primitives_in_tile(shape.m, m_tile);
                        let slot = c % c_per_tile;
                        chain.latch_all(slot)?;
                        stats.kmem_reads += (active * p) as u64;
                        chain.flush_pipeline();

                        // Steady-state charge: the feed duration only;
                        // extra steps below overlap the next pattern in
                        // real hardware.
                        stats.stream_cycles += duration;
                        let t_end = duration + (active * p) as u64;
                        let band_base = band * schedule.rows_per_band();
                        for t in 1..=t_end {
                            let mut feed = [Fix16::ZERO; 2];
                            if t <= duration {
                                for (lane, px) in schedule.feed(t as usize).iter().enumerate() {
                                    if let Some(px) = px {
                                        // Pattern rows live in padded
                                        // coordinates.
                                        let prow = (band_base + px.row) as isize - pad;
                                        let pcol = px.col as isize - pad;
                                        feed[lane] =
                                            ifmap.get_padded(n, c, prow, pcol, Fix16::ZERO);
                                        stats.imem_reads += 1;
                                    }
                                }
                            }
                            chain.step(t, feed, schedule);
                            for g in 0..active {
                                let u = t as i64 - (2 * p + g * p) as i64;
                                if let Some(slot) = schedule.emit(u, out_w) {
                                    let row = band_base + slot.row_in_band;
                                    if row < out_h {
                                        let m = m_tile * prims + g;
                                        let cur = ofmaps.get(n, m, row, slot.col);
                                        let sum = cur.wrapping_add(chain.tail(g).raw());
                                        ofmaps.set(n, m, row, slot.col, sum);
                                        stats.omem_accesses += 2;
                                        stats.valid_outputs += 1;
                                        stats.mac_ops += p as u64;
                                    }
                                }
                            }
                        }
                    }
                    ControlStep::Drain { m_tile } => {
                        let active = mapping.primitives_in_tile(shape.m, m_tile);
                        stats.drain_cycles += (active * p) as u64;
                    }
                }
            }
        }

        Ok(RunReport {
            ofmaps,
            stats,
            mapping,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_fixed::OverflowMode;
    use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};

    fn cfg(pes: usize) -> ChainConfig {
        ChainConfig::builder().num_pes(pes).build().unwrap()
    }

    fn tensor_from(dims: [usize; 4], f: impl Fn(usize) -> i16) -> Tensor<Fix16> {
        let vol: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..vol).map(|i| Fix16::from_raw(f(i))).collect()).unwrap()
    }

    fn golden(shape: &LayerShape, ifmap: &Tensor<Fix16>, weights: &Tensor<Fix16>) -> Tensor<i32> {
        conv2d_fix(
            ifmap,
            weights,
            ConvGeometry::rect(shape.kh, shape.kw, shape.stride, shape.pad).unwrap(),
            OverflowMode::Wrapping,
        )
        .unwrap()
    }

    fn assert_matches_golden(pes: usize, shape: LayerShape, mode: ChannelMode) {
        let ifmap = tensor_from([1, shape.c, shape.h, shape.w], |i| {
            ((i * 7 + 3) % 23) as i16 - 11
        });
        let weights = tensor_from([shape.m, shape.c, shape.kh, shape.kw], |i| {
            ((i * 5 + 1) % 17) as i16 - 8
        });
        let run = ChainSim::new(cfg(pes))
            .run_layer_with(&shape, &ifmap, &weights, mode)
            .unwrap();
        let want = golden(&shape, &ifmap, &weights);
        assert_eq!(run.ofmaps, want, "shape {shape} on {pes} PEs");
    }

    #[test]
    fn single_primitive_single_channel_layer() {
        assert_matches_golden(9, LayerShape::square(1, 6, 1, 3, 1, 0), ChannelMode::Dual);
    }

    #[test]
    fn multi_channel_accumulation() {
        assert_matches_golden(9, LayerShape::square(3, 6, 1, 3, 1, 0), ChannelMode::Dual);
    }

    #[test]
    fn multi_primitive_parallel_ofmaps() {
        assert_matches_golden(27, LayerShape::square(2, 7, 3, 3, 1, 0), ChannelMode::Dual);
    }

    #[test]
    fn m_tiling_with_partial_tile() {
        // 5 ofmap channels on 2 primitives -> 3 tiles, last partial.
        assert_matches_golden(18, LayerShape::square(2, 6, 5, 3, 1, 0), ChannelMode::Dual);
    }

    #[test]
    fn padding_layers() {
        assert_matches_golden(9, LayerShape::square(2, 6, 2, 3, 1, 1), ChannelMode::Dual);
        assert_matches_golden(25, LayerShape::square(1, 7, 1, 5, 1, 2), ChannelMode::Dual);
    }

    #[test]
    fn kernel_sizes_sweep() {
        for k in [1usize, 2, 3, 4, 5] {
            let shape = LayerShape::square(2, k + 5, 2, k, 1, 0);
            assert_matches_golden(2 * k * k, shape, ChannelMode::Dual);
        }
    }

    #[test]
    fn rectangular_kernels() {
        let mut shape = LayerShape::square(2, 8, 2, 3, 1, 0);
        shape.kw = 2;
        assert_matches_golden(12, shape, ChannelMode::Dual);
        let mut shape = LayerShape::square(1, 8, 1, 2, 1, 0);
        shape.kw = 4;
        assert_matches_golden(8, shape, ChannelMode::Dual);
    }

    #[test]
    fn non_square_images() {
        let mut shape = LayerShape::square(1, 5, 1, 3, 1, 0);
        shape.w = 9;
        assert_matches_golden(9, shape, ChannelMode::Dual);
    }

    #[test]
    fn kmemory_tiling_reloads() {
        // 5 channels with a 2-deep kMemory forces 3 kernel tiles.
        let shape = LayerShape::square(5, 6, 2, 3, 1, 0);
        let ifmap = tensor_from([1, 5, 6, 6], |i| (i % 13) as i16 - 6);
        let weights = tensor_from([2, 5, 3, 3], |i| (i % 7) as i16 - 3);
        let sim = ChainSim::new(
            ChainConfig::builder()
                .num_pes(18)
                .kmemory_depth(2)
                .build()
                .unwrap(),
        );
        let run = sim.run_layer(&shape, &ifmap, &weights).unwrap();
        assert_eq!(run.ofmaps, golden(&shape, &ifmap, &weights));
        // Kernels loaded once per channel even with 3 tiles.
        assert_eq!(run.stats.load_cycles, 2 * 5 * 9);
        // Three drains (one per kernel tile).
        assert_eq!(run.stats.drain_cycles, 3 * 2 * 9);
    }

    #[test]
    fn single_channel_mode_matches_golden_too() {
        assert_matches_golden(9, LayerShape::square(2, 6, 1, 3, 1, 0), ChannelMode::Single);
        assert_matches_golden(
            18,
            LayerShape::square(1, 7, 3, 3, 1, 1),
            ChannelMode::Single,
        );
    }

    #[test]
    fn single_channel_takes_about_k_times_longer() {
        let shape = LayerShape::square(1, 14, 1, 3, 1, 1);
        let ifmap = tensor_from([1, 1, 14, 14], |i| (i % 9) as i16);
        let weights = tensor_from([1, 1, 3, 3], |i| i as i16);
        let sim = ChainSim::new(cfg(9));
        let dual = sim
            .run_layer_with(&shape, &ifmap, &weights, ChannelMode::Dual)
            .unwrap();
        let single = sim
            .run_layer_with(&shape, &ifmap, &weights, ChannelMode::Single)
            .unwrap();
        assert_eq!(dual.ofmaps, single.ofmaps);
        let ratio = single.stats.stream_cycles as f64 / dual.stats.stream_cycles as f64;
        // 14 rows: dual runs ceil(14/3)=5 patterns, single runs 14.
        assert!(
            (2.3..=3.0).contains(&ratio),
            "single/dual cycle ratio {ratio}"
        );
    }

    #[test]
    fn batch_processes_each_image() {
        let shape = LayerShape::square(2, 5, 2, 3, 1, 0);
        let ifmap = tensor_from([2, 2, 5, 5], |i| (i % 19) as i16 - 9);
        let weights = tensor_from([2, 2, 3, 3], |i| (i % 5) as i16 - 2);
        let run = ChainSim::new(cfg(18))
            .run_layer(&shape, &ifmap, &weights)
            .unwrap();
        assert_eq!(run.ofmaps, golden(&shape, &ifmap, &weights));
        assert_eq!(run.ofmaps.shape().n(), 2);
    }

    #[test]
    fn stats_are_consistent() {
        let shape = LayerShape::square(2, 7, 3, 3, 1, 1);
        let ifmap = tensor_from([1, 2, 7, 7], |i| (i % 11) as i16);
        let weights = tensor_from([3, 2, 3, 3], |i| (i % 3) as i16);
        let run = ChainSim::new(cfg(27))
            .run_layer(&shape, &ifmap, &weights)
            .unwrap();
        let s = &run.stats;
        // Every output = 9 MACs; every output = 2 oMemory accesses.
        assert_eq!(s.mac_ops, 9 * s.valid_outputs);
        assert_eq!(s.omem_accesses, 2 * s.valid_outputs);
        // All windows of all channels committed: M·E²·C.
        assert_eq!(s.valid_outputs, 3 * 7 * 7 * 2);
        // Load = all weights once.
        assert_eq!(s.load_cycles, 3 * 2 * 9);
        // kMemory: one latch per active PE per pattern: 3 prims x 9 PEs x
        // (2 channels x 3 bands).
        assert_eq!(s.kmem_reads, 27 * 6);
        // Stream cycles: 6 patterns x (3·9 + 2) = 174.
        assert_eq!(s.stream_cycles, 6 * 29);
        assert_eq!(
            s.total_cycles(),
            s.stream_cycles + s.drain_cycles + s.load_cycles
        );
        assert!(s.utilization(27) > 0.3);
    }

    #[test]
    fn data_mismatch_rejected() {
        let shape = LayerShape::square(2, 5, 2, 3, 1, 0);
        let bad_if = tensor_from([1, 3, 5, 5], |_| 0);
        let w = tensor_from([2, 2, 3, 3], |_| 0);
        let sim = ChainSim::new(cfg(9));
        assert!(matches!(
            sim.run_layer(&shape, &bad_if, &w),
            Err(CoreError::DataMismatch(_))
        ));
        let good_if = tensor_from([1, 2, 5, 5], |_| 0);
        let bad_w = tensor_from([2, 2, 5, 5], |_| 0);
        assert!(matches!(
            sim.run_layer(&shape, &good_if, &bad_w),
            Err(CoreError::DataMismatch(_))
        ));
    }

    #[test]
    fn strided_layers_rejected_with_pointer_to_polyphase() {
        let shape = LayerShape::square(1, 11, 1, 3, 2, 0);
        let ifmap = tensor_from([1, 1, 11, 11], |_| 1);
        let weights = tensor_from([1, 1, 3, 3], |_| 1);
        assert!(matches!(
            ChainSim::new(cfg(9)).run_layer(&shape, &ifmap, &weights),
            Err(CoreError::UnsupportedStride { stride: 2 })
        ));
    }
}
