//! The controller finite-state machine (paper §III.B).
//!
//! "Chain-NN is controlled by a finite state machine which changes its
//! states according to a specific dataflow. 1) The finite-state machine is
//! initialized to specific CNN parameters. 2) It starts to load related
//! kernels into the processor core. 3) The ifmaps are continuously
//! streamed into Chain-NN and convolution results are calculated."
//!
//! [`ControllerFsm`] sequences one layer into [`ControlStep`]s:
//! kernel-load phases, pattern-streaming phases and drain phases, ordered
//! by the Fig. 7 loop nest (ofmap tile → kernel tile → input channel →
//! row band). The simulator executes these steps; the analytic models
//! count them.

use crate::{CoreError, KernelMapping, LayerShape};

/// One unit of control issued by the FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlStep {
    /// Load the kernels of ofmap tile `m_tile` for the input channels of
    /// `c_tile` into kMemory (serial, one weight per cycle).
    LoadKernels {
        /// Ofmap-channel tile index.
        m_tile: usize,
        /// Kernel (input-channel) tile index.
        c_tile: usize,
    },
    /// Stream one pattern: input channel `c`, row band `band`, under
    /// ofmap tile `m_tile`.
    Pattern {
        /// Ofmap-channel tile index.
        m_tile: usize,
        /// Input channel (absolute, within the layer shape).
        c: usize,
        /// Row band index.
        band: usize,
    },
    /// Let the pipeline drain before the next kernel load.
    Drain {
        /// Ofmap-channel tile being finished.
        m_tile: usize,
    },
    /// Layer complete.
    Done,
}

/// FSM sequencing one layer over the chain.
///
/// # Example
///
/// ```
/// use chain_nn_core::{fsm::{ControllerFsm, ControlStep}, KernelMapping, LayerShape};
/// let shape = LayerShape::square(2, 6, 3, 3, 1, 0); // 2 channels, out 4x4
/// let mapping = KernelMapping::new(18, 3, 3).unwrap(); // 2 primitives
/// let mut fsm = ControllerFsm::new(&shape, &mapping, 16).unwrap();
/// assert!(matches!(fsm.next_step(), ControlStep::LoadKernels { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct ControllerFsm {
    m_tiles: usize,
    c_tiles: usize,
    c_per_tile: usize,
    total_c: usize,
    bands: usize,
    // Cursor state.
    m_tile: usize,
    c_tile: usize,
    c_in_tile: usize,
    band: usize,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Load,
    Stream,
    Drain,
    Done,
}

impl ControllerFsm {
    /// Initializes the FSM "to specific CNN parameters" for the paper's
    /// dual-channel schedule (`kh` ofmap rows per pattern).
    ///
    /// `kmemory_depth` bounds how many input channels' weights fit
    /// on-chip at once; deeper layers are processed in several kernel
    /// tiles with reloads in between.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if the shape fails validation.
    pub fn new(
        shape: &LayerShape,
        mapping: &KernelMapping,
        kmemory_depth: usize,
    ) -> Result<Self, CoreError> {
        Self::with_rows_per_band(shape, mapping, kmemory_depth, mapping.kh())
    }

    /// Like [`ControllerFsm::new`] but with an explicit pattern advance —
    /// the single-channel schedule completes only one ofmap row per
    /// pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Shape`] if the shape fails validation and
    /// [`CoreError::Config`] for zero `kmemory_depth`/`rows_per_band`.
    pub fn with_rows_per_band(
        shape: &LayerShape,
        mapping: &KernelMapping,
        kmemory_depth: usize,
        rows_per_band: usize,
    ) -> Result<Self, CoreError> {
        shape.validate()?;
        if kmemory_depth == 0 {
            return Err(CoreError::Config("kmemory_depth must be non-zero".into()));
        }
        if rows_per_band == 0 {
            return Err(CoreError::Config("rows_per_band must be non-zero".into()));
        }
        let bands = shape.out_h().div_ceil(rows_per_band);
        Ok(ControllerFsm {
            m_tiles: mapping.m_tiles(shape.m),
            c_tiles: shape.c.div_ceil(kmemory_depth),
            c_per_tile: kmemory_depth.min(shape.c),
            total_c: shape.c,
            bands,
            m_tile: 0,
            c_tile: 0,
            c_in_tile: 0,
            band: 0,
            phase: Phase::Load,
        })
    }

    /// Ofmap tiles this layer needs.
    pub fn m_tiles(&self) -> usize {
        self.m_tiles
    }

    /// Kernel tiles per ofmap tile.
    pub fn c_tiles(&self) -> usize {
        self.c_tiles
    }

    /// Row bands per (tile, channel).
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Channels in kernel tile `ct` (the last may be partial).
    pub fn channels_in_tile(&self, ct: usize) -> usize {
        let start = ct * self.c_per_tile;
        self.total_c.saturating_sub(start).min(self.c_per_tile)
    }

    /// Emits the next control step and advances the cursor.
    pub fn next_step(&mut self) -> ControlStep {
        match self.phase {
            Phase::Done => ControlStep::Done,
            Phase::Load => {
                self.phase = Phase::Stream;
                self.c_in_tile = 0;
                self.band = 0;
                ControlStep::LoadKernels {
                    m_tile: self.m_tile,
                    c_tile: self.c_tile,
                }
            }
            Phase::Stream => {
                let step = ControlStep::Pattern {
                    m_tile: self.m_tile,
                    c: self.c_tile * self.c_per_tile + self.c_in_tile,
                    band: self.band,
                };
                // Advance band → channel → finish tile.
                self.band += 1;
                if self.band == self.bands {
                    self.band = 0;
                    self.c_in_tile += 1;
                    if self.c_in_tile == self.channels_in_tile(self.c_tile) {
                        self.phase = Phase::Drain;
                    }
                }
                step
            }
            Phase::Drain => {
                let step = ControlStep::Drain {
                    m_tile: self.m_tile,
                };
                self.c_tile += 1;
                if self.c_tile == self.c_tiles {
                    self.c_tile = 0;
                    self.m_tile += 1;
                    if self.m_tile == self.m_tiles {
                        self.phase = Phase::Done;
                        return step;
                    }
                }
                self.phase = Phase::Load;
                step
            }
        }
    }

    /// Runs the FSM to completion, collecting all steps (for tests and
    /// the analytic models; the simulator drives it incrementally).
    pub fn into_steps(mut self) -> Vec<ControlStep> {
        let mut steps = Vec::new();
        loop {
            let s = self.next_step();
            if s == ControlStep::Done {
                break;
            }
            steps.push(s);
        }
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fsm(c: usize, m: usize, out_h: usize, prims: usize, depth: usize) -> ControllerFsm {
        // Build a shape with the requested out_h for K=3, pad 1.
        let shape = LayerShape::square(c, out_h, m, 3, 1, 1);
        let mapping = KernelMapping::new(prims * 9, 3, 3).unwrap();
        ControllerFsm::new(&shape, &mapping, depth).unwrap()
    }

    #[test]
    fn sequence_structure_single_tile() {
        let steps = fsm(2, 2, 6, 2, 16).into_steps();
        // Load, then 2 channels x 2 bands, then drain.
        assert_eq!(steps.len(), 1 + 4 + 1);
        assert!(matches!(
            steps[0],
            ControlStep::LoadKernels {
                m_tile: 0,
                c_tile: 0
            }
        ));
        assert!(matches!(
            steps[1],
            ControlStep::Pattern {
                m_tile: 0,
                c: 0,
                band: 0
            }
        ));
        assert!(matches!(
            steps[4],
            ControlStep::Pattern { c: 1, band: 1, .. }
        ));
        assert!(matches!(steps[5], ControlStep::Drain { m_tile: 0 }));
    }

    #[test]
    fn multiple_m_tiles_reload_kernels() {
        // 5 ofmap channels on 2 primitives -> 3 tiles.
        let steps = fsm(1, 5, 3, 2, 16).into_steps();
        let loads = steps
            .iter()
            .filter(|s| matches!(s, ControlStep::LoadKernels { .. }))
            .count();
        assert_eq!(loads, 3);
        let drains = steps
            .iter()
            .filter(|s| matches!(s, ControlStep::Drain { .. }))
            .count();
        assert_eq!(drains, 3);
    }

    #[test]
    fn kernel_tiling_when_kmemory_small() {
        // 5 channels, depth 2 -> 3 kernel tiles (2+2+1).
        let mut f = fsm(5, 2, 3, 2, 2);
        assert_eq!(f.c_tiles(), 3);
        assert_eq!(f.channels_in_tile(2), 1);
        let steps = f.clone().into_steps();
        let loads = steps
            .iter()
            .filter(|s| matches!(s, ControlStep::LoadKernels { .. }))
            .count();
        assert_eq!(loads, 3);
        // Patterns cover all 5 channels exactly once per band set.
        let mut seen = [0usize; 5];
        for s in &steps {
            if let ControlStep::Pattern { c, .. } = s {
                seen[*c] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n == f.bands()));
        // Drive the original too so the clone shortcut is exercised.
        assert!(matches!(f.next_step(), ControlStep::LoadKernels { .. }));
    }

    #[test]
    fn done_is_sticky() {
        let mut f = fsm(1, 1, 3, 1, 4);
        let _ = f.clone().into_steps();
        loop {
            if f.next_step() == ControlStep::Done {
                break;
            }
        }
        assert_eq!(f.next_step(), ControlStep::Done);
        assert_eq!(f.next_step(), ControlStep::Done);
    }

    #[test]
    fn band_count_ceils() {
        let f = fsm(1, 1, 13, 1, 4);
        assert_eq!(f.bands(), 5); // ceil(13/3)
    }
}
