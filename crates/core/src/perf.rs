//! Analytic performance model (validated against Fig. 9 and the
//! cycle-accurate simulator).
//!
//! ## The cycle formula
//!
//! For one group of a layer (per-group channels `C`, ofmaps `M`, output
//! `E×E`, kernel `K`, stride `s`) mapped on `P` primitives:
//!
//! ```text
//! stream ≈ ⌈M/P⌉ · C · (E/K) · (s·K·E + [s=1]·(K²−1))
//! load   = M · C · K²                  (one weight per cycle, per batch)
//! ```
//!
//! Two variants are provided:
//!
//! * [`CycleModel::PaperCalibrated`] uses a *fractional* pattern count
//!   `E/K` and drops the warm-up term for strided layers — this
//!   reproduces the paper's Fig. 9 numbers exactly for AlexNet
//!   conv1/3/4/5 (159.30/57.20/42.90/28.60 ms at batch 128) and gives
//!   90.4 ms for conv2 where the paper reports 102.10 ms (no tiling we
//!   could construct reproduces that one point; see EXPERIMENTS.md).
//! * [`CycleModel::Strict`] charges whole patterns `⌈E/K⌉`, the real
//!   pattern duration `K·W_padded + K − 1`, pipeline drains before kernel
//!   reloads, and per-image kernel loads — it matches the cycle-accurate
//!   simulator *exactly* (asserted in the integration tests). Strided
//!   layers are costed through their the [polyphase decomposition][crate::polyphase]
//!   decomposition, which is how this reproduction actually executes
//!   them.

use chain_nn_nets::{ConvLayerSpec, Network};

use crate::polyphase;
use crate::{ChainConfig, CoreError, KernelMapping, LayerShape};

/// Which cycle-accounting rules to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleModel {
    /// Reproduces the paper's own accounting (fractional patterns, no
    /// drain, batch-amortized loads).
    #[default]
    PaperCalibrated,
    /// Matches the cycle-accurate simulator (whole patterns, drains,
    /// per-image loads, polyphase for strides).
    Strict,
}

/// Predicted cycle counts for one layer (per image unless noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerf {
    /// Streaming cycles per image (fractional under
    /// [`CycleModel::PaperCalibrated`]).
    pub stream_cycles: f64,
    /// Drain cycles per image (zero under `PaperCalibrated`).
    pub drain_cycles: f64,
    /// Kernel-load cycles — charged once per *batch* in network totals.
    pub load_cycles: u64,
    /// Useful MACs per image.
    pub macs: u64,
}

impl LayerPerf {
    /// Streaming + drain cycles per image.
    pub fn compute_cycles(&self) -> f64 {
        self.stream_cycles + self.drain_cycles
    }
}

/// Per-layer timing of a network run (the rows of Fig. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTime {
    /// Layer name.
    pub name: String,
    /// Convolution time for the whole batch, in milliseconds.
    pub conv_ms: f64,
    /// Kernel-load time (once per batch), in milliseconds.
    pub load_ms: f64,
}

/// Network-level performance summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPerf {
    /// Per-layer breakdown (Fig. 9).
    pub layers: Vec<LayerTime>,
    /// Batch size used.
    pub batch: usize,
    /// Total batch latency in milliseconds (conv + loads).
    pub total_ms: f64,
    /// Frames per second.
    pub fps: f64,
    /// Achieved throughput in GOPS (2 ops per MAC).
    pub gops: f64,
}

/// The analytic performance model for one chain configuration.
///
/// # Example
///
/// ```
/// use chain_nn_core::{perf::{PerfModel, CycleModel}, ChainConfig};
/// use chain_nn_nets::zoo;
///
/// let model = PerfModel::new(ChainConfig::paper_576());
/// let alex = zoo::alexnet();
/// let perf = model.network(&alex, 128, CycleModel::PaperCalibrated).unwrap();
/// // Paper Fig. 9 sums to ~390 ms conv + 3.26 ms loads -> ~326 fps.
/// assert!(perf.fps > 300.0 && perf.fps < 400.0);
/// ```
#[derive(Debug, Clone)]
pub struct PerfModel {
    cfg: ChainConfig,
}

impl PerfModel {
    /// Builds a model for `cfg`.
    pub fn new(cfg: ChainConfig) -> Self {
        PerfModel { cfg }
    }

    /// The modeled configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.cfg
    }

    /// Predicts one layer's cycles per image.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::KernelTooLargeForChain`] if a primitive does
    /// not fit the chain.
    pub fn layer(&self, spec: &ConvLayerSpec, model: CycleModel) -> Result<LayerPerf, CoreError> {
        let mut stream = 0f64;
        let mut drain = 0f64;
        for group in 0..spec.groups() {
            let shape = LayerShape::from_spec_group(spec, group);
            match model {
                CycleModel::PaperCalibrated => {
                    let (s, d) = self.paper_group_cycles(&shape)?;
                    stream += s;
                    drain += d;
                }
                CycleModel::Strict => {
                    let (s, d) = self.strict_group_cycles(&shape)?;
                    stream += s;
                    drain += d;
                }
            }
        }
        Ok(LayerPerf {
            stream_cycles: stream,
            drain_cycles: drain,
            load_cycles: spec.weights(),
            macs: spec.macs(),
        })
    }

    /// Paper-calibrated group cycles: `⌈M/P⌉·C·(E/K)·(s·K·E + [s=1](K²−1))`.
    fn paper_group_cycles(&self, shape: &LayerShape) -> Result<(f64, f64), CoreError> {
        let mapping = KernelMapping::new(self.cfg.num_pes(), shape.kh, shape.kw)?;
        let p = mapping.pes_per_primitive() as f64;
        let m_tiles = mapping.m_tiles(shape.m) as f64;
        let e_rows = shape.out_h() as f64;
        let e_cols = shape.out_w() as f64;
        let k = shape.kh as f64;
        let s = shape.stride as f64;
        let warmup = if shape.stride == 1 { p - 1.0 } else { 0.0 };
        let per_pattern = s * k * e_cols + warmup;
        let stream = m_tiles * shape.c as f64 * (e_rows / k) * per_pattern;
        Ok((stream, 0.0))
    }

    /// Strict group cycles matching the simulator; strided shapes go
    /// through the polyphase decomposition.
    fn strict_group_cycles(&self, shape: &LayerShape) -> Result<(f64, f64), CoreError> {
        if shape.stride == 1 {
            return self.strict_stride1(shape);
        }
        let mut stream = 0f64;
        let mut drain = 0f64;
        for phase in polyphase::phase_shapes(shape) {
            let (s, d) = self.strict_stride1(&phase)?;
            stream += s;
            drain += d;
        }
        Ok((stream, drain))
    }

    fn strict_stride1(&self, shape: &LayerShape) -> Result<(f64, f64), CoreError> {
        shape.validate()?;
        let mapping = KernelMapping::new(self.cfg.num_pes(), shape.kh, shape.kw)?;
        let p = mapping.pes_per_primitive();
        let m_tiles = mapping.m_tiles(shape.m);
        let bands = shape.out_h().div_ceil(shape.kh);
        let duration = (shape.kh * shape.padded_w() + shape.kh - 1) as f64;
        let stream = (m_tiles * shape.c * bands) as f64 * duration;
        // One drain per (m_tile, kernel tile); active primitives only.
        let c_tiles = shape.c.div_ceil(self.cfg.kmemory_depth());
        let mut drain = 0f64;
        for t in 0..m_tiles {
            let active = mapping.primitives_in_tile(shape.m, t);
            drain += (c_tiles * active * p) as f64;
        }
        Ok((stream, drain))
    }

    /// Predicts a full network run at `batch` images: per-layer times,
    /// fps, and achieved GOPS. Kernel loads are charged once per batch
    /// (the paper's amortization argument in §V.B).
    ///
    /// # Errors
    ///
    /// Propagates layer mapping errors.
    pub fn network(
        &self,
        net: &Network,
        batch: usize,
        model: CycleModel,
    ) -> Result<NetworkPerf, CoreError> {
        let freq_hz = self.cfg.freq_mhz() * 1e6;
        let mut layers = Vec::with_capacity(net.layers().len());
        let mut total_ms = 0f64;
        let mut total_macs = 0u64;
        for spec in net.layers() {
            let perf = self.layer(spec, model)?;
            let conv_ms = perf.compute_cycles() * batch as f64 / freq_hz * 1e3;
            let load_ms = perf.load_cycles as f64 / freq_hz * 1e3;
            total_ms += conv_ms + load_ms;
            total_macs += perf.macs;
            layers.push(LayerTime {
                name: spec.name().to_owned(),
                conv_ms,
                load_ms,
            });
        }
        let fps = batch as f64 / (total_ms / 1e3);
        let gops = (2 * total_macs * batch as u64) as f64 / (total_ms / 1e3) / 1e9;
        Ok(NetworkPerf {
            layers,
            batch,
            total_ms,
            fps,
            gops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_nets::zoo;

    fn model() -> PerfModel {
        PerfModel::new(ChainConfig::paper_576())
    }

    /// Paper Fig. 9 conv times at batch 128 (ms):
    /// 159.30 / 102.10 / 57.20 / 42.90 / 28.60.
    #[test]
    fn fig9_conv_times_paper_calibrated() {
        let alex = zoo::alexnet();
        let perf = model()
            .network(&alex, 128, CycleModel::PaperCalibrated)
            .unwrap();
        let got: Vec<f64> = perf.layers.iter().map(|l| l.conv_ms).collect();
        let paper = [159.30, 102.10, 57.20, 42.90, 28.60];
        // conv1, conv3, conv4, conv5 reproduce to the displayed precision.
        for idx in [0usize, 2, 3, 4] {
            assert!(
                (got[idx] - paper[idx]).abs() < 0.02,
                "layer {} got {} want {}",
                idx + 1,
                got[idx],
                paper[idx]
            );
        }
        // conv2: the paper's point is not reproducible; ours is 90.4 ms.
        assert!(
            (got[1] - 90.42).abs() < 0.1,
            "conv2 model changed: {}",
            got[1]
        );
    }

    /// Paper Fig. 9 kernel-load times (ms): .05/.43/1.23/.93/.62.
    #[test]
    fn fig9_kernel_load_times() {
        let alex = zoo::alexnet();
        let perf = model()
            .network(&alex, 128, CycleModel::PaperCalibrated)
            .unwrap();
        let got: Vec<f64> = perf.layers.iter().map(|l| l.load_ms).collect();
        let paper = [0.05, 0.43, 1.23, 0.93, 0.62];
        for (g, p) in got.iter().zip(paper) {
            assert!((g - p).abs() < 0.035, "load {g} vs paper {p}");
        }
        let total: f64 = got.iter().sum();
        // §V.B: "3.25ms are spent for loading kernels".
        assert!((total - 3.25).abs() < 0.1, "total load {total}");
    }

    /// §V.B: "326.2fps/275.6fps can be achieved for 128/4 batch sizes".
    /// Our model lands within a few percent (the paper's own text and
    /// figure disagree at this level; see EXPERIMENTS.md).
    #[test]
    fn fps_reproduces_shape() {
        let alex = zoo::alexnet();
        let m = model();
        let p128 = m.network(&alex, 128, CycleModel::PaperCalibrated).unwrap();
        let p4 = m.network(&alex, 4, CycleModel::PaperCalibrated).unwrap();
        assert!(
            (p128.fps - 326.2).abs() / 326.2 < 0.10,
            "fps128 {}",
            p128.fps
        );
        assert!((p4.fps - 275.6).abs() / 275.6 < 0.12, "fps4 {}", p4.fps);
        // Larger batches amortize kernel loads -> more fps.
        assert!(p128.fps > p4.fps);
    }

    /// Effective throughput stays below peak and utilization matches
    /// Table II's range for AlexNet's kernel mix.
    #[test]
    fn gops_below_peak() {
        let alex = zoo::alexnet();
        let perf = model()
            .network(&alex, 128, CycleModel::PaperCalibrated)
            .unwrap();
        let peak = ChainConfig::paper_576().peak_gops();
        assert!(perf.gops < peak);
        assert!(perf.gops > 0.25 * peak, "gops {}", perf.gops);
    }

    #[test]
    fn strict_exceeds_paper_estimate() {
        let alex = zoo::alexnet();
        for spec in alex.layers() {
            let paper = model().layer(spec, CycleModel::PaperCalibrated).unwrap();
            let strict = model().layer(spec, CycleModel::Strict).unwrap();
            if spec.stride() == 1 {
                assert!(
                    strict.compute_cycles() >= paper.compute_cycles(),
                    "{}: strict {} < paper {}",
                    spec.name(),
                    strict.compute_cycles(),
                    paper.compute_cycles()
                );
            } else {
                // Polyphase execution beats the paper's strided handling.
                assert!(
                    strict.compute_cycles() < paper.compute_cycles(),
                    "{}: polyphase should win",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn vgg_and_small_nets_map() {
        for net in [zoo::vgg16(), zoo::lenet(), zoo::cifar10()] {
            let perf = model()
                .network(&net, 4, CycleModel::PaperCalibrated)
                .unwrap();
            assert!(perf.total_ms > 0.0, "{}", net.name());
            assert!(perf.fps > 0.0);
        }
    }

    #[test]
    fn oversized_kernel_is_an_error() {
        let spec = ConvLayerSpec::square("big", 1, 64, 25, 1, 0, 1).unwrap();
        assert!(model().layer(&spec, CycleModel::Strict).is_err());
    }
}
