//! Polyphase decomposition: stride-s convolution as s² stride-1
//! convolutions (extension beyond the paper).
//!
//! The paper's column-wise scan pattern is defined for stride 1; its
//! strided handling (AlexNet conv1) is left implicit. This module
//! implements the natural extension the 1D chain is well suited for —
//! because primitives are just *runs of adjacent PEs*, the chain can be
//! repartitioned per phase, including rectangular kernels:
//!
//! ```text
//! y[d,c] = Σ_{i,j} x[s·d+i, s·c+j] · k[i,j]
//!        = Σ_{a<s, b<s} Σ_{ii,jj} x_{a,b}[d+ii, c+jj] · k_{a,b}[ii,jj]
//! ```
//!
//! where `x_{a,b}[i,j] = x[a+s·i, b+s·j]` (a decimated plane) and
//! `k_{a,b}[ii,jj] = k[a+s·ii, b+s·jj]` (a decimated kernel of
//! `⌈(K−a)/s⌉ × ⌈(K−b)/s⌉` taps). Each phase is an ordinary stride-1
//! convolution the dual-channel schedule executes at full utilization;
//! phases accumulate in oMemory exactly like extra input channels.
//!
//! For AlexNet conv1 (K=11, s=4) this yields 16 phases with 3×3…2×2
//! kernels and beats the paper's own conv1 throughput (see
//! EXPERIMENTS.md, Fig. 9 strict rows).

use chain_nn_fixed::Fix16;
use chain_nn_tensor::Tensor;

use crate::sim::{ChainSim, RunReport, RunStats};
use crate::{CoreError, KernelMapping, LayerShape};

/// One phase of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Row offset `a` into the original kernel.
    pub row_offset: usize,
    /// Column offset `b`.
    pub col_offset: usize,
    /// Decimated kernel rows `⌈(K−a)/s⌉`.
    pub kh: usize,
    /// Decimated kernel columns `⌈(K−b)/s⌉`.
    pub kw: usize,
}

/// Enumerates the non-empty phases of a strided shape.
///
/// For `stride == 1` this is a single phase equal to the original kernel.
pub fn phases(shape: &LayerShape) -> Vec<Phase> {
    let s = shape.stride;
    let mut out = Vec::new();
    for a in 0..s.min(shape.kh) {
        let kh = (shape.kh - a).div_ceil(s);
        for b in 0..s.min(shape.kw) {
            let kw = (shape.kw - b).div_ceil(s);
            out.push(Phase {
                row_offset: a,
                col_offset: b,
                kh,
                kw,
            });
        }
    }
    out
}

/// The stride-1 layer shape one phase presents to the chain: the
/// decimated plane is sized so the phase's valid output is exactly the
/// original `E×E`.
pub fn phase_shape(shape: &LayerShape, phase: &Phase) -> LayerShape {
    LayerShape {
        c: shape.c,
        h: shape.out_h() + phase.kh - 1,
        w: shape.out_w() + phase.kw - 1,
        m: shape.m,
        kh: phase.kh,
        kw: phase.kw,
        stride: 1,
        pad: 0,
    }
}

/// All phase shapes of a strided layer (used by the strict performance
/// model).
pub fn phase_shapes(shape: &LayerShape) -> Vec<LayerShape> {
    phases(shape)
        .iter()
        .map(|ph| phase_shape(shape, ph))
        .collect()
}

/// Extracts the decimated ifmap plane for `phase`: element `(i, j)` is
/// padded-image pixel `(a + s·i, b + s·j)`.
pub fn decimate_ifmap(shape: &LayerShape, phase: &Phase, ifmap: &Tensor<Fix16>) -> Tensor<Fix16> {
    let ps = phase_shape(shape, phase);
    let batch = ifmap.shape().n();
    let mut out = Tensor::<Fix16>::zeros([batch, ps.c, ps.h, ps.w]);
    let pad = shape.pad as isize;
    for n in 0..batch {
        for c in 0..ps.c {
            for i in 0..ps.h {
                for j in 0..ps.w {
                    let r = (phase.row_offset + shape.stride * i) as isize - pad;
                    let q = (phase.col_offset + shape.stride * j) as isize - pad;
                    out.set(n, c, i, j, ifmap.get_padded(n, c, r, q, Fix16::ZERO));
                }
            }
        }
    }
    out
}

/// Extracts the decimated kernel for `phase`: tap `(ii, jj)` is original
/// tap `(a + s·ii, b + s·jj)`.
pub fn decimate_weights(
    shape: &LayerShape,
    phase: &Phase,
    weights: &Tensor<Fix16>,
) -> Tensor<Fix16> {
    let mut out = Tensor::<Fix16>::zeros([shape.m, shape.c, phase.kh, phase.kw]);
    for m in 0..shape.m {
        for c in 0..shape.c {
            for ii in 0..phase.kh {
                for jj in 0..phase.kw {
                    let w = weights.get(
                        m,
                        c,
                        phase.row_offset + shape.stride * ii,
                        phase.col_offset + shape.stride * jj,
                    );
                    out.set(m, c, ii, jj, w);
                }
            }
        }
    }
    out
}

/// Report of a polyphase execution.
#[derive(Debug, Clone)]
pub struct PolyphaseReport {
    /// Accumulated ofmaps (bit-exact vs the strided golden model).
    pub ofmaps: Tensor<i32>,
    /// Summed counters across all phases.
    pub stats: RunStats,
    /// Phase list with each phase's chain mapping.
    pub phases: Vec<(Phase, KernelMapping)>,
}

/// Runs a strided layer on the chain by executing every phase as a
/// stride-1 pass and accumulating the results (as oMemory would).
///
/// # Errors
///
/// Propagates shape/mapping/data errors from the underlying simulator.
///
/// # Example
///
/// ```
/// use chain_nn_core::{polyphase, sim::ChainSim, ChainConfig, LayerShape};
/// use chain_nn_fixed::Fix16;
/// use chain_nn_tensor::Tensor;
///
/// // 4x4 kernel at stride 2 -> four 2x2 phases.
/// let shape = LayerShape::square(1, 8, 1, 4, 2, 0);
/// let ifmap = Tensor::filled([1, 1, 8, 8], Fix16::from_raw(1));
/// let weights = Tensor::filled([1, 1, 4, 4], Fix16::from_raw(1));
/// let sim = ChainSim::new(ChainConfig::builder().num_pes(8).build().unwrap());
/// let rep = polyphase::run(&sim, &shape, &ifmap, &weights).unwrap();
/// assert!(rep.ofmaps.as_slice().iter().all(|&v| v == 16));
/// assert_eq!(rep.phases.len(), 4);
/// ```
pub fn run(
    sim: &ChainSim,
    shape: &LayerShape,
    ifmap: &Tensor<Fix16>,
    weights: &Tensor<Fix16>,
) -> Result<PolyphaseReport, CoreError> {
    shape.validate()?;
    let batch = ifmap.shape().n();
    let mut ofmaps = Tensor::<i32>::zeros([batch, shape.m, shape.out_h(), shape.out_w()]);
    let mut stats = RunStats::default();
    let mut phase_maps = Vec::new();
    for phase in phases(shape) {
        let ps = phase_shape(shape, &phase);
        let pif = decimate_ifmap(shape, &phase, ifmap);
        let pw = decimate_weights(shape, &phase, weights);
        let RunReport {
            ofmaps: part,
            stats: s,
            mapping,
        } = sim.run_layer(&ps, &pif, &pw)?;
        for (n, m, h, w, v) in part.iter_indexed() {
            let cur = ofmaps.get(n, m, h, w);
            ofmaps.set(n, m, h, w, cur.wrapping_add(v));
        }
        stats.stream_cycles += s.stream_cycles;
        stats.drain_cycles += s.drain_cycles;
        stats.load_cycles += s.load_cycles;
        stats.imem_reads += s.imem_reads;
        stats.kmem_reads += s.kmem_reads;
        stats.omem_accesses += s.omem_accesses;
        stats.valid_outputs += s.valid_outputs;
        stats.mac_ops += s.mac_ops;
        phase_maps.push((phase, mapping));
    }
    Ok(PolyphaseReport {
        ofmaps,
        stats,
        phases: phase_maps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChainConfig;
    use chain_nn_fixed::OverflowMode;
    use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};

    fn tensor_from(dims: [usize; 4], f: impl Fn(usize) -> i16) -> Tensor<Fix16> {
        let vol: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..vol).map(|i| Fix16::from_raw(f(i))).collect()).unwrap()
    }

    fn golden(shape: &LayerShape, ifmap: &Tensor<Fix16>, w: &Tensor<Fix16>) -> Tensor<i32> {
        conv2d_fix(
            ifmap,
            w,
            ConvGeometry::rect(shape.kh, shape.kw, shape.stride, shape.pad).unwrap(),
            OverflowMode::Wrapping,
        )
        .unwrap()
    }

    #[test]
    fn phase_taps_partition_the_kernel() {
        for (k, s) in [(11usize, 4usize), (5, 2), (7, 3), (3, 2), (4, 4), (3, 5)] {
            let shape = LayerShape::square(1, 4 * k, 1, k, s, 0);
            let ph = phases(&shape);
            let row_taps: usize = ph.iter().filter(|p| p.col_offset == 0).map(|p| p.kh).sum();
            assert_eq!(row_taps, k, "K={k} s={s} row taps");
            let total: usize = ph.iter().map(|p| p.kh * p.kw).sum();
            assert_eq!(total, k * k, "K={k} s={s} total taps");
        }
    }

    #[test]
    fn alexnet_conv1_phase_structure() {
        let shape = LayerShape::square(3, 227, 96, 11, 4, 0);
        let ph = phases(&shape);
        assert_eq!(ph.len(), 16);
        let khs: Vec<usize> = ph
            .iter()
            .filter(|p| p.col_offset == 0)
            .map(|p| p.kh)
            .collect();
        assert_eq!(khs, vec![3, 3, 3, 2]);
    }

    #[test]
    fn stride1_is_identity_decomposition() {
        let shape = LayerShape::square(2, 8, 2, 3, 1, 1);
        let ph = phases(&shape);
        assert_eq!(ph.len(), 1);
        assert_eq!((ph[0].kh, ph[0].kw), (3, 3));
        let ps = phase_shape(&shape, &ph[0]);
        assert_eq!((ps.h, ps.w), (shape.padded_h(), shape.padded_w()));
    }

    fn assert_polyphase_matches(pes: usize, shape: LayerShape) {
        let ifmap = tensor_from([1, shape.c, shape.h, shape.w], |i| {
            ((i * 11 + 5) % 31) as i16 - 15
        });
        let weights = tensor_from([shape.m, shape.c, shape.kh, shape.kw], |i| {
            ((i * 3 + 2) % 13) as i16 - 6
        });
        let sim = ChainSim::new(ChainConfig::builder().num_pes(pes).build().unwrap());
        let rep = run(&sim, &shape, &ifmap, &weights).unwrap();
        assert_eq!(rep.ofmaps, golden(&shape, &ifmap, &weights), "{shape}");
    }

    #[test]
    fn stride2_matches_golden() {
        assert_polyphase_matches(9, LayerShape::square(2, 9, 1, 3, 2, 0));
        assert_polyphase_matches(16, LayerShape::square(1, 10, 2, 4, 2, 1));
    }

    #[test]
    fn stride3_and_4_match_golden() {
        assert_polyphase_matches(9, LayerShape::square(1, 13, 1, 5, 3, 0));
        // A shrunken AlexNet conv1: K=11, s=4 over a 31x31 image.
        assert_polyphase_matches(18, LayerShape::square(1, 31, 2, 11, 4, 0));
    }

    #[test]
    fn stride_larger_than_kernel() {
        // s=5 > K=3: windows are disjoint with gaps.
        assert_polyphase_matches(9, LayerShape::square(1, 13, 1, 3, 5, 0));
    }

    #[test]
    fn stride1_through_polyphase_equals_direct() {
        let shape = LayerShape::square(2, 6, 2, 3, 1, 1);
        let ifmap = tensor_from([1, 2, 6, 6], |i| (i % 23) as i16 - 11);
        let weights = tensor_from([2, 2, 3, 3], |i| (i % 9) as i16 - 4);
        let sim = ChainSim::new(ChainConfig::builder().num_pes(9).build().unwrap());
        let poly = run(&sim, &shape, &ifmap, &weights).unwrap();
        let direct = sim.run_layer(&shape, &ifmap, &weights).unwrap();
        assert_eq!(poly.ofmaps, direct.ofmaps);
        assert_eq!(poly.stats.stream_cycles, direct.stats.stream_cycles);
    }

    #[test]
    fn stats_accumulate_loads_to_total_weights() {
        let shape = LayerShape::square(2, 9, 2, 3, 2, 0);
        let ifmap = tensor_from([1, 2, 9, 9], |_| 1);
        let weights = tensor_from([2, 2, 3, 3], |_| 1);
        let sim = ChainSim::new(ChainConfig::builder().num_pes(9).build().unwrap());
        let rep = run(&sim, &shape, &ifmap, &weights).unwrap();
        // Every original weight is loaded exactly once across phases.
        assert_eq!(rep.stats.load_cycles, 2 * 2 * 9);
    }
}
