//! The dual-channel processing engine (paper Fig. 6).
//!
//! Each PE holds:
//!
//! * a register-file `kMemory` of stationary kernel weights (one slot per
//!   input channel of the current ofmap assignment),
//! * a working weight register, latched from kMemory once per pattern —
//!   this is why kMemory's activity factor is only `1/KE` (paper §V.C),
//! * two ifmap pipeline registers (`OddIF`, `EvenIF`) plus the mux that
//!   picks which one feeds the MAC,
//! * the MAC with its output register (the "vertical cut" of Fig. 4(b))
//!   and one psum transfer register, so partial sums advance one PE every
//!   two cycles while pixels advance every cycle — the classic 1D systolic
//!   arrangement of Kung & Picard (paper ref \[16\]).

use chain_nn_fixed::{Acc32, Fix16};

use crate::schedule::Lane;
use crate::CoreError;

/// One dual-channel processing engine.
///
/// # Example
///
/// ```
/// use chain_nn_core::pe::DualChannelPe;
/// use chain_nn_core::schedule::Lane;
/// use chain_nn_fixed::{Acc32, Fix16};
///
/// let mut pe = DualChannelPe::new(4);
/// pe.write_kmemory(0, Fix16::from_raw(3)).unwrap();
/// pe.latch_weight(0).unwrap();
/// // Cycle 1: shift a pixel into the odd lane.
/// pe.step(Fix16::from_raw(5), Fix16::ZERO, Acc32::ZERO, Lane::Odd);
/// // Cycle 2: the MAC consumes the registered pixel: 0 + 3·5.
/// pe.step(Fix16::ZERO, Fix16::ZERO, Acc32::ZERO, Lane::Odd);
/// assert_eq!(pe.mac_out().raw(), 15);
/// ```
#[derive(Debug, Clone)]
pub struct DualChannelPe {
    kmemory: Vec<Fix16>,
    weight: Fix16,
    lanes: [Fix16; 2],
    mac_reg: Acc32,
    pass_reg: Acc32,
}

impl DualChannelPe {
    /// Creates a PE with a `depth`-slot kMemory, all state zeroed.
    pub fn new(depth: usize) -> Self {
        DualChannelPe {
            kmemory: vec![Fix16::ZERO; depth],
            weight: Fix16::ZERO,
            lanes: [Fix16::ZERO; 2],
            mac_reg: Acc32::ZERO,
            pass_reg: Acc32::ZERO,
        }
    }

    /// kMemory capacity in weight slots.
    pub fn kmemory_depth(&self) -> usize {
        self.kmemory.len()
    }

    /// Writes a kernel weight into kMemory slot `slot` (the load phase of
    /// the FSM).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::KMemoryOverflow`] if `slot` is out of range.
    pub fn write_kmemory(&mut self, slot: usize, w: Fix16) -> Result<(), CoreError> {
        let depth = self.kmemory.len();
        *self
            .kmemory
            .get_mut(slot)
            .ok_or(CoreError::KMemoryOverflow {
                needed: slot + 1,
                depth,
            })? = w;
        Ok(())
    }

    /// Latches the working weight register from kMemory slot `slot` — one
    /// kMemory read, performed once per pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::KMemoryOverflow`] if `slot` is out of range.
    pub fn latch_weight(&mut self, slot: usize) -> Result<(), CoreError> {
        self.weight = *self.kmemory.get(slot).ok_or(CoreError::KMemoryOverflow {
            needed: slot + 1,
            depth: self.kmemory.len(),
        })?;
        Ok(())
    }

    /// The working weight currently multiplying the stream.
    pub fn weight(&self) -> Fix16 {
        self.weight
    }

    /// Value in the given lane register (what the next PE will receive).
    pub fn lane(&self, lane: Lane) -> Fix16 {
        self.lanes[lane.index()]
    }

    /// The MAC output register — the primitive's result port when this PE
    /// is a primitive tail.
    pub fn mac_out(&self) -> Acc32 {
        self.mac_reg
    }

    /// The psum transfer register — what the next PE's MAC consumes.
    pub fn psum_out(&self) -> Acc32 {
        self.pass_reg
    }

    /// Advances one clock cycle.
    ///
    /// `odd_in`/`even_in` are the lane values arriving from the previous
    /// PE (or the memory feed for the chain head); `psum_in` is the
    /// previous PE's [`psum_out`](Self::psum_out) (or zero at a primitive
    /// head); `select` is the mux control computed by the FSM from the
    /// schedule.
    ///
    /// Register semantics (everything reads pre-cycle state): the MAC
    /// consumes the *currently registered* pixel of the selected lane,
    /// `mac_reg` latches the new sum, `pass_reg` latches the old
    /// `mac_reg`, and both lane registers shift in the new values.
    pub fn step(&mut self, odd_in: Fix16, even_in: Fix16, psum_in: Acc32, select: Lane) {
        let x = self.lanes[select.index()];
        let new_mac = psum_in.mac(self.weight, x);
        self.pass_reg = self.mac_reg;
        self.mac_reg = new_mac;
        self.lanes = [odd_in, even_in];
    }

    /// Clears the pipeline registers (lane, MAC, pass) but not kMemory —
    /// the FSM does this between patterns.
    pub fn flush_pipeline(&mut self) {
        self.lanes = [Fix16::ZERO; 2];
        self.mac_reg = Acc32::ZERO;
        self.pass_reg = Acc32::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmemory_bounds_checked() {
        let mut pe = DualChannelPe::new(2);
        assert!(pe.write_kmemory(1, Fix16::from_raw(1)).is_ok());
        assert!(matches!(
            pe.write_kmemory(2, Fix16::ZERO),
            Err(CoreError::KMemoryOverflow {
                needed: 3,
                depth: 2
            })
        ));
        assert!(pe.latch_weight(5).is_err());
    }

    #[test]
    fn mac_uses_registered_pixel_not_incoming() {
        let mut pe = DualChannelPe::new(1);
        pe.write_kmemory(0, Fix16::from_raw(2)).unwrap();
        pe.latch_weight(0).unwrap();
        // The pixel arriving this cycle must not be multiplied yet.
        pe.step(Fix16::from_raw(7), Fix16::ZERO, Acc32::ZERO, Lane::Odd);
        assert_eq!(pe.mac_out().raw(), 0);
        pe.step(Fix16::ZERO, Fix16::ZERO, Acc32::ZERO, Lane::Odd);
        assert_eq!(pe.mac_out().raw(), 14);
    }

    #[test]
    fn psum_takes_two_cycles_per_pe() {
        let mut pe = DualChannelPe::new(1);
        // weight 0 so the MAC only forwards psum_in.
        pe.step(Fix16::ZERO, Fix16::ZERO, Acc32::from_raw(9), Lane::Odd);
        // After one cycle the sum sits in mac_reg, not yet at psum_out.
        assert_eq!(pe.mac_out().raw(), 9);
        assert_eq!(pe.psum_out().raw(), 0);
        pe.step(Fix16::ZERO, Fix16::ZERO, Acc32::ZERO, Lane::Odd);
        assert_eq!(pe.psum_out().raw(), 9);
    }

    #[test]
    fn mux_selects_lane() {
        let mut pe = DualChannelPe::new(1);
        pe.write_kmemory(0, Fix16::from_raw(1)).unwrap();
        pe.latch_weight(0).unwrap();
        pe.step(
            Fix16::from_raw(3),
            Fix16::from_raw(4),
            Acc32::ZERO,
            Lane::Odd,
        );
        pe.step(Fix16::ZERO, Fix16::ZERO, Acc32::ZERO, Lane::Even);
        assert_eq!(pe.mac_out().raw(), 4);
    }

    #[test]
    fn flush_clears_pipeline_keeps_kmemory() {
        let mut pe = DualChannelPe::new(1);
        pe.write_kmemory(0, Fix16::from_raw(5)).unwrap();
        pe.latch_weight(0).unwrap();
        pe.step(
            Fix16::from_raw(1),
            Fix16::from_raw(2),
            Acc32::from_raw(3),
            Lane::Odd,
        );
        pe.flush_pipeline();
        assert_eq!(pe.mac_out().raw(), 0);
        assert_eq!(pe.lane(Lane::Odd).raw(), 0);
        // kMemory and the working weight survive a flush.
        assert_eq!(pe.weight().raw(), 5);
        pe.latch_weight(0).unwrap();
        assert_eq!(pe.weight().raw(), 5);
    }
}
