//! Error type for the core crate.

use std::error::Error;
use std::fmt;

/// Errors produced by chain configuration, mapping and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Chain configuration is invalid.
    Config(String),
    /// The kernel does not fit the chain at all (K² > number of PEs).
    KernelTooLargeForChain {
        /// PEs required by one primitive.
        needed: usize,
        /// PEs available in the chain.
        available: usize,
    },
    /// A layer shape is inconsistent (e.g. kernel larger than padded
    /// input).
    Shape(String),
    /// The simulator only implements stride-1 schedules directly; strided
    /// layers go through [`polyphase`](crate::polyphase).
    UnsupportedStride {
        /// The stride requested.
        stride: usize,
    },
    /// Tensor dimensions passed to the simulator disagree with the layer
    /// shape.
    DataMismatch(String),
    /// kMemory cannot hold the working set and the caller disabled
    /// kernel re-tiling.
    KMemoryOverflow {
        /// Weight slots needed per PE.
        needed: usize,
        /// Slots available per PE.
        depth: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(msg) => write!(f, "invalid chain configuration: {msg}"),
            CoreError::KernelTooLargeForChain { needed, available } => write!(
                f,
                "primitive needs {needed} PEs but the chain has only {available}"
            ),
            CoreError::Shape(msg) => write!(f, "invalid layer shape: {msg}"),
            CoreError::UnsupportedStride { stride } => write!(
                f,
                "stride {stride} has no direct dual-channel schedule; use polyphase decomposition"
            ),
            CoreError::DataMismatch(msg) => write!(f, "data does not match layer shape: {msg}"),
            CoreError::KMemoryOverflow { needed, depth } => write!(
                f,
                "kMemory needs {needed} weight slots per PE but only {depth} are available"
            ),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_numbers() {
        let e = CoreError::KernelTooLargeForChain {
            needed: 121,
            available: 64,
        };
        let s = e.to_string();
        assert!(s.contains("121") && s.contains("64"));
        assert!(CoreError::UnsupportedStride { stride: 4 }
            .to_string()
            .contains("polyphase"));
    }
}
