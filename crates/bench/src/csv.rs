//! Machine-readable (CSV) exports of every reproduced artifact, so the
//! results can be plotted or regression-tracked without parsing the
//! pretty tables.

use std::fmt::Write as _;

use chain_nn_core::mapper::table_two;
use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::ChainConfig;
use chain_nn_dse::{export, Explorer, SweepSpec};
use chain_nn_energy::compare::table_five;
use chain_nn_energy::power::PowerModel;
use chain_nn_mem::traffic::TrafficModel;
use chain_nn_mem::MemoryConfig;
use chain_nn_nets::zoo;

use crate::paper;

/// Table II as CSV: `k,pes_per_primitive,primitives,active_pes,eff_pct,paper_pct`.
pub fn table2_csv() -> String {
    let mut s = String::from("k,pes_per_primitive,primitives,active_pes,eff_pct,paper_pct\n");
    for (row, paper) in table_two(576).iter().zip(paper::TABLE2_EFF) {
        let _ = writeln!(
            s,
            "{},{},{},{},{:.1},{paper}",
            row.k, row.pes_per_primitive, row.active_primitives, row.active_pes, row.efficiency_pct
        );
    }
    s
}

/// Fig. 9 as CSV: `layer,paper_conv_ms,model_conv_ms,strict_conv_ms,paper_load_ms,model_load_ms`.
pub fn fig9_csv() -> String {
    let model = PerfModel::new(ChainConfig::paper_576());
    let alex = zoo::alexnet();
    let cal = model
        .network(&alex, 128, CycleModel::PaperCalibrated)
        .expect("alexnet maps");
    let strict = model
        .network(&alex, 128, CycleModel::Strict)
        .expect("alexnet maps");
    let mut s = String::from(
        "layer,paper_conv_ms,model_conv_ms,strict_conv_ms,paper_load_ms,model_load_ms\n",
    );
    for (i, (l, st)) in cal.layers.iter().zip(&strict.layers).enumerate() {
        let _ = writeln!(
            s,
            "{},{},{:.2},{:.2},{},{:.2}",
            l.name,
            paper::FIG9_CONV_MS[i],
            l.conv_ms,
            st.conv_ms,
            paper::FIG9_LOAD_MS[i],
            l.load_ms
        );
    }
    s
}

/// Table IV as CSV, bytes: `layer,level,paper_mb,model_bytes`.
pub fn table4_csv() -> String {
    let model = TrafficModel::new(ChainConfig::paper_576(), MemoryConfig::paper());
    let rows = model
        .network_traffic(&zoo::alexnet(), 4)
        .expect("alexnet maps");
    let mut s = String::from("layer,level,paper_mb,model_bytes\n");
    for (i, r) in rows.iter().enumerate() {
        for (level, paper_mb, bytes) in [
            ("dram", paper::TABLE4_DRAM[i], r.dram_bytes),
            ("imem", paper::TABLE4_IMEM[i], r.imem_bytes),
            ("kmem", paper::TABLE4_KMEM[i], r.kmem_bytes),
            ("omem", paper::TABLE4_OMEM[i], r.omem_bytes),
        ] {
            let _ = writeln!(s, "{},{level},{paper_mb},{bytes}", r.name);
        }
    }
    s
}

/// Fig. 10 as CSV: `component,paper_mw,model_mw`.
pub fn fig10_csv() -> String {
    let r = PowerModel::new(ChainConfig::paper_576(), MemoryConfig::paper())
        .network_power(&zoo::alexnet(), 4)
        .expect("alexnet maps");
    let b = r.breakdown;
    let mut s = String::from("component,paper_mw,model_mw\n");
    for (name, p, m) in [
        ("chain", paper::FIG10_MW[0], b.chain_mw),
        ("kmem", paper::FIG10_MW[1], b.kmem_mw),
        ("imem", paper::FIG10_MW[2], b.imem_mw),
        ("omem", paper::FIG10_MW[3], b.omem_mw),
    ] {
        let _ = writeln!(s, "{name},{p},{m:.2}");
    }
    let _ = writeln!(s, "total,{},{:.2}", paper::HEADLINE.0, b.total_mw());
    s
}

/// Table V as CSV: `design,tech_nm,gates_k,memory_kb,parallelism,freq_mhz,power_w,gops,gops_per_watt`.
pub fn table5_csv() -> String {
    let mut s = String::from(
        "design,tech_nm,gates_k,memory_kb,parallelism,freq_mhz,power_w,gops,gops_per_watt\n",
    );
    for r in table_five() {
        let _ = writeln!(
            s,
            "{},{},{},{:.1},{},{},{},{},{:.1}",
            r.name.replace(',', ";"),
            r.tech.feature_nm(),
            r.gate_count_k.map_or("".to_owned(), |g| format!("{g:.0}")),
            r.onchip_memory_kb,
            r.parallelism,
            r.freq_mhz,
            r.power_w,
            r.peak_gops,
            r.gops_per_watt()
        );
    }
    s
}

/// A coarse design-space sweep around the paper's point (PEs × clock ×
/// batch on AlexNet) as CSV, with Pareto-membership columns — the
/// machine-readable version of `examples/design_space.rs`, produced by
/// `chain-nn-dse`'s export conventions.
pub fn dse_sweep_csv() -> String {
    let spec = SweepSpec {
        pes: vec![144, 288, 576, 1152],
        freqs_mhz: vec![350.0, 700.0],
        batches: vec![1, 4],
        ..SweepSpec::paper_point()
    };
    let result = Explorer::new()
        .run(&spec, chain_nn_dse::executor::default_threads())
        .expect("default sweep axes are valid");
    export::results_csv(&result)
}

/// Every CSV, keyed by a file-stem name.
pub fn all_csv() -> Vec<(&'static str, String)> {
    vec![
        ("table2_utilization", table2_csv()),
        ("fig9_alexnet_times", fig9_csv()),
        ("table4_memory_traffic", table4_csv()),
        ("fig10_power_breakdown", fig10_csv()),
        ("table5_comparison", table5_csv()),
        ("dse_sweep", dse_sweep_csv()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(csv: &str) -> Vec<Vec<String>> {
        csv.lines()
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect()
    }

    #[test]
    fn rectangular_and_headed() {
        for (name, csv) in all_csv() {
            let rows = parse(&csv);
            assert!(rows.len() >= 4, "{name}: too few rows");
            let width = rows[0].len();
            assert!(width >= 3, "{name}: too few columns");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.len(), width, "{name}: ragged row {i}");
            }
        }
    }

    #[test]
    fn table2_values() {
        let rows = parse(&table2_csv());
        assert_eq!(rows[1][0], "3");
        assert_eq!(rows[1][3], "576");
        assert_eq!(rows[5][3], "484");
    }

    #[test]
    fn fig9_numeric_columns() {
        let rows = parse(&fig9_csv());
        for row in &rows[1..] {
            for cell in &row[1..] {
                assert!(cell.parse::<f64>().is_ok(), "non-numeric cell {cell}");
            }
        }
    }

    #[test]
    fn dse_sweep_has_a_feasible_paper_row() {
        let csv = dse_sweep_csv();
        let row = csv
            .lines()
            .find(|l| l.starts_with("alexnet,576,700,256,32,25,16,4,"))
            .expect("paper configuration row present");
        assert!(row.contains(",ok,"), "paper row infeasible: {row}");
    }

    #[test]
    fn table4_has_four_levels_per_layer() {
        let rows = parse(&table4_csv());
        assert_eq!(rows.len() - 1, 5 * 4);
    }
}
