//! Machine-readable bench history and the regression gate.
//!
//! `scripts/bench-history.sh` (driving the `bench_history` bench
//! target) appends one JSON line per measurement to `BENCH_dse.json` /
//! `BENCH_serve.json` at the repo root, then compares the fresh run
//! against the checked-in baselines under `crates/bench/baselines/`
//! with a relative tolerance. The history files accumulate across
//! runs — each line is self-contained — so a slowdown shows up both as
//! a gate failure *now* and as a visible step in the series *later*.
//!
//! The gate direction comes from the metric name: `*_per_sec` means
//! higher is better, time-suffixed metrics (`*_secs`, `*_ms`, `*_us`,
//! `*_ns`) mean lower is better.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One bench measurement, one JSON line in a history file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench identifier, e.g. `dse/sweep_wall`.
    pub bench: String,
    /// Metric name; its suffix decides the gate direction.
    pub metric: String,
    /// Measured value.
    pub value: f64,
    /// Unit label, e.g. `secs` or `points/s` (informational).
    pub unit: String,
    /// Unix seconds when the measurement was taken.
    pub timestamp_s: u64,
}

impl BenchRecord {
    /// Encodes one history line (no trailing newline). Names are
    /// straight identifiers, so no JSON escaping is needed — enforced
    /// by debug assertion.
    #[must_use]
    pub fn encode(&self) -> String {
        debug_assert!(
            !self.bench.contains('"') && !self.metric.contains('"') && !self.unit.contains('"'),
            "bench record fields must not need escaping"
        );
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"bench\":\"{}\",\"metric\":\"{}\",\"value\":{},\"unit\":\"{}\",\"timestamp_s\":{}}}",
            self.bench, self.metric, self.value, self.unit, self.timestamp_s
        );
        s
    }

    /// Parses one history line; `None` for anything malformed (a
    /// corrupt line invalidates itself, not the file).
    #[must_use]
    pub fn parse(line: &str) -> Option<BenchRecord> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(BenchRecord {
            bench: field_str(line, "bench")?,
            metric: field_str(line, "metric")?,
            value: field_num(line, "value")?,
            unit: field_str(line, "unit")?,
            timestamp_s: field_num(line, "timestamp_s")? as u64,
        })
    }
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_owned())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| {
            c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit()
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Appends records to a history file, one JSON line each, creating the
/// file if needed.
///
/// # Errors
///
/// File I/O failures.
pub fn append(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut out = String::new();
    for r in records {
        out.push_str(&r.encode());
        out.push('\n');
    }
    file.write_all(out.as_bytes())
}

/// Loads every parseable record from a history file; a missing file is
/// an empty history.
#[must_use]
pub fn load(path: &Path) -> Vec<BenchRecord> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines().filter_map(BenchRecord::parse).collect()
}

/// Which way a metric improves, derived from its name suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style metrics (`*_per_sec`): bigger is better.
    HigherIsBetter,
    /// Time-style metrics (`*_secs`, `*_ms`, `*_us`, `*_ns`): smaller
    /// is better.
    LowerIsBetter,
}

/// Maps a metric name to its gate direction. Unknown suffixes default
/// to lower-is-better — the conservative choice for a latency-shaped
/// unknown.
#[must_use]
pub fn direction_for(metric: &str) -> Direction {
    if metric.ends_with("_per_sec") {
        Direction::HigherIsBetter
    } else {
        Direction::LowerIsBetter
    }
}

/// The gate's verdict: which (bench, metric) pairs regressed past the
/// tolerance, and how many were checked at all.
#[derive(Debug, Default)]
pub struct GateResult {
    /// Human-readable description of each regression.
    pub failures: Vec<String>,
    /// Baseline entries that had a matching current measurement.
    pub checked: usize,
}

impl GateResult {
    /// Whether the gate passed (no regression beyond tolerance).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares the newest current measurement of every baseline
/// (bench, metric) pair against the baseline value. `tolerance` is the
/// allowed relative slack: with 0.5, a lower-is-better metric may be
/// up to 1.5× the baseline (and a higher-is-better one as low as
/// baseline / 1.5) before it counts as a regression. Pairs missing
/// from `current` are not failures — a partial run gates what it ran.
#[must_use]
pub fn gate(current: &[BenchRecord], baseline: &[BenchRecord], tolerance: f64) -> GateResult {
    let mut result = GateResult::default();
    let allowed = 1.0 + tolerance.max(0.0);
    for base in baseline {
        // Newest current record wins: the history file accumulates.
        let Some(now) = current
            .iter()
            .rev()
            .find(|r| r.bench == base.bench && r.metric == base.metric)
        else {
            continue;
        };
        result.checked += 1;
        let regressed = match direction_for(&base.metric) {
            Direction::LowerIsBetter => now.value > base.value * allowed,
            Direction::HigherIsBetter => now.value < base.value / allowed,
        };
        if regressed {
            result.failures.push(format!(
                "{}/{}: {} {} vs baseline {} (tolerance {:.0}%)",
                base.bench,
                base.metric,
                now.value,
                now.unit,
                base.value,
                tolerance * 100.0
            ));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(bench: &str, metric: &str, value: f64) -> BenchRecord {
        BenchRecord {
            bench: bench.to_owned(),
            metric: metric.to_owned(),
            value,
            unit: "secs".to_owned(),
            timestamp_s: 1_700_000_000,
        }
    }

    #[test]
    fn records_round_trip_through_the_line_format() {
        let r = BenchRecord {
            bench: "dse/sweep_wall".to_owned(),
            metric: "best_secs".to_owned(),
            value: 0.0625,
            unit: "secs".to_owned(),
            timestamp_s: 1_754_000_000,
        };
        let line = r.encode();
        assert!(line.starts_with("{\"bench\":\"dse/sweep_wall\""), "{line}");
        assert_eq!(BenchRecord::parse(&line), Some(r));
        // Corrupt lines invalidate themselves, not the file.
        assert_eq!(BenchRecord::parse("not json"), None);
        assert_eq!(BenchRecord::parse("{\"bench\":\"x\"}"), None);
    }

    #[test]
    fn append_and_load_accumulate_history() {
        let path = std::env::temp_dir().join(format!(
            "chain-nn-bench-history-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        append(&path, &[record("a", "x_secs", 1.0)]).unwrap();
        append(&path, &[record("a", "x_secs", 2.0)]).unwrap();
        let loaded = load(&path);
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].value, 2.0);
        std::fs::remove_file(&path).ok();
        assert!(load(&path).is_empty(), "missing file is empty history");
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_on_a_2x_slowdown() {
        let baseline = [
            record("dse/sweep_wall", "best_secs", 1.0),
            record("dse/points_per_sec", "points_per_sec", 1000.0),
        ];
        // Within 50% tolerance on both axes: pass.
        let ok = gate(
            &[
                record("dse/sweep_wall", "best_secs", 1.4),
                record("dse/points_per_sec", "points_per_sec", 800.0),
            ],
            &baseline,
            0.5,
        );
        assert!(ok.passed(), "{:?}", ok.failures);
        assert_eq!(ok.checked, 2);

        // An injected 2× slowdown trips the gate in both directions.
        let slow = gate(
            &[
                record("dse/sweep_wall", "best_secs", 2.0),
                record("dse/points_per_sec", "points_per_sec", 500.0),
            ],
            &baseline,
            0.5,
        );
        assert!(!slow.passed());
        assert_eq!(slow.failures.len(), 2, "{:?}", slow.failures);
        assert!(slow.failures[0].contains("dse/sweep_wall"));

        // The newest measurement of a pair is what gates: an old slow
        // record followed by a fast one passes.
        let recovered = gate(
            &[
                record("dse/sweep_wall", "best_secs", 9.0),
                record("dse/sweep_wall", "best_secs", 1.0),
            ],
            &baseline,
            0.5,
        );
        assert!(recovered.passed(), "{:?}", recovered.failures);

        // Baselines with no current measurement are skipped, not failed.
        let partial = gate(&[], &baseline, 0.5);
        assert!(partial.passed());
        assert_eq!(partial.checked, 0);
    }

    #[test]
    fn direction_comes_from_the_metric_suffix() {
        assert_eq!(direction_for("points_per_sec"), Direction::HigherIsBetter);
        for lower in ["best_secs", "eval_us", "flush_ns", "wall_ms", "mystery"] {
            assert_eq!(direction_for(lower), Direction::LowerIsBetter, "{lower}");
        }
    }
}
