//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each `repro_*` function returns the formatted paper-vs-measured table
//! printed by the corresponding binary (`cargo run -p chain-nn-bench
//! --bin repro_table2`, …). `repro_all` concatenates everything —
//! EXPERIMENTS.md is generated from its output.
//!
//! | Paper artifact | Runner | Binary |
//! |----------------|--------|--------|
//! | Table II (PE utilization)        | [`repro_table2`] | `repro_table2` |
//! | Fig. 5 (dual-channel ablation)   | [`repro_fig5`]   | `repro_fig5`   |
//! | Fig. 9 (AlexNet layer times)     | [`repro_fig9`]   | `repro_fig9`   |
//! | Table IV (memory traffic)        | [`repro_table4`] | `repro_table4` |
//! | Fig. 10 (power breakdown)        | [`repro_fig10`]  | `repro_fig10`  |
//! | Table V (state of the art)       | [`repro_table5`] | `repro_table5` |
//! | Fig. 8 (layout → area report)    | [`repro_area`]   | `repro_area`   |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod history;

use std::fmt::Write as _;

use chain_nn_baselines::taxonomy::compare_classes;
use chain_nn_core::mapper::table_two;
use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::sim::{ChainSim, ChannelMode};
use chain_nn_core::{ChainConfig, LayerShape};
use chain_nn_energy::area::AreaModel;
use chain_nn_energy::compare::{dadiannao, dadiannao_core_gops_per_watt, table_five};
use chain_nn_energy::power::PowerModel;
use chain_nn_energy::tech::TechNode;
use chain_nn_fixed::Fix16;
use chain_nn_mem::traffic::{totals, TrafficModel};
use chain_nn_mem::MemoryConfig;
use chain_nn_nets::zoo;
use chain_nn_tensor::Tensor;

/// Paper-reported values used in the comparison columns.
pub mod paper {
    /// Table II efficiency (%), K = 3,5,7,9,11. (The K=9 row is printed
    /// as 100% in the paper; 567/576 is 98.4% — see EXPERIMENTS.md.)
    pub const TABLE2_EFF: [f64; 5] = [100.0, 99.8, 93.6, 100.0, 84.0];
    /// Fig. 9 conv times, ms, batch 128.
    pub const FIG9_CONV_MS: [f64; 5] = [159.30, 102.10, 57.20, 42.90, 28.60];
    /// Fig. 9 kernel-load times, ms.
    pub const FIG9_LOAD_MS: [f64; 5] = [0.05, 0.43, 1.23, 0.93, 0.62];
    /// Table IV rows (MB, batch 4): DRAM, iMemory, kMemory, oMemory.
    pub const TABLE4_DRAM: [f64; 5] = [9.0, 5.5, 4.3, 3.4, 2.3];
    /// iMemory row.
    pub const TABLE4_IMEM: [f64; 5] = [6.6, 8.7, 4.8, 3.6, 2.4];
    /// kMemory row.
    pub const TABLE4_KMEM: [f64; 5] = [15.4, 17.8, 37.2, 27.9, 18.6];
    /// oMemory row.
    pub const TABLE4_OMEM: [f64; 5] = [13.9, 143.3, 265.8, 199.4, 132.9];
    /// Fig. 10 breakdown, mW: chain, kMemory, iMemory, oMemory.
    pub const FIG10_MW: [f64; 4] = [466.71, 40.15, 3.91, 56.70];
    /// Headline: total power (mW), GOPS/W total, GOPS/W core.
    pub const HEADLINE: (f64, f64, f64) = (567.5, 1421.0, 1727.8);
}

fn delta_pct(ours: f64, paper: f64) -> f64 {
    if paper == 0.0 {
        return 0.0;
    }
    100.0 * (ours - paper) / paper
}

/// Regenerates Table II (active PEs in the 576-PE chain).
pub fn repro_table2() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== Table II: active PEs in a 576-PE systolic chain ==");
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "Kernel", "PEs/prim", "primitives", "activePE", "eff(our)", "eff(paper)", "delta"
    );
    for (row, paper_eff) in table_two(576).iter().zip(paper::TABLE2_EFF) {
        let _ = writeln!(
            s,
            "{:<8} {:>10} {:>12} {:>10} {:>9.1}% {:>9.1}% {:>+7.1}%",
            format!("{}x{}", row.k, row.k),
            row.pes_per_primitive,
            row.active_primitives,
            row.active_pes,
            row.efficiency_pct,
            paper_eff,
            row.efficiency_pct - paper_eff,
        );
    }
    let _ = writeln!(
        s,
        "note: the paper prints 100% for K=9; 7 primitives x 81 PEs = 567/576 = 98.4%."
    );
    s
}

/// Regenerates the Fig. 5 argument as a measured ablation: single- vs
/// dual-channel utilization from the cycle-accurate simulator.
pub fn repro_fig5() -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig. 5 ablation: single- vs dual-channel PE (cycle-accurate) =="
    );
    let _ = writeln!(
        s,
        "{:<4} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "K", "dual cycles", "single cyc", "ratio", "dual util", "single util"
    );
    for k in [2usize, 3, 5] {
        let h = 6 * k;
        let shape = LayerShape::square(2, h, 2, k, 1, 0);
        let pes = 2 * k * k;
        let ifmap = Tensor::<Fix16>::filled([1, 2, h, h], Fix16::from_raw(3));
        let weights = Tensor::<Fix16>::filled([2, 2, k, k], Fix16::from_raw(2));
        let sim = ChainSim::new(ChainConfig::builder().num_pes(pes).build().unwrap());
        let dual = sim
            .run_layer_with(&shape, &ifmap, &weights, ChannelMode::Dual)
            .expect("dual run");
        let single = sim
            .run_layer_with(&shape, &ifmap, &weights, ChannelMode::Single)
            .expect("single run");
        assert_eq!(dual.ofmaps, single.ofmaps, "modes must agree functionally");
        let ratio = single.stats.stream_cycles as f64 / dual.stats.stream_cycles as f64;
        let _ = writeln!(
            s,
            "{:<4} {:>12} {:>12} {:>8.2}x {:>11.1}% {:>11.1}%",
            k,
            dual.stats.stream_cycles,
            single.stats.stream_cycles,
            ratio,
            100.0 * dual.stats.utilization(pes),
            100.0 * single.stats.utilization(pes),
        );
    }
    let _ = writeln!(
        s,
        "paper claim: a single channel sustains only 1/K of peak; the measured\n\
         single/dual cycle ratio approaches K as maps grow (warm-up amortizes)."
    );
    s
}

/// Regenerates Fig. 9 (AlexNet per-layer time, batch 128) under both
/// cycle models.
pub fn repro_fig9() -> String {
    let cfg = ChainConfig::paper_576();
    let model = PerfModel::new(cfg);
    let alex = zoo::alexnet();
    let paper_cal = model
        .network(&alex, 128, CycleModel::PaperCalibrated)
        .expect("alexnet maps");
    let strict = model
        .network(&alex, 128, CycleModel::Strict)
        .expect("alexnet maps");
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig. 9: AlexNet conv-layer time distribution, batch 128, {} PEs @ {} MHz ==",
        cfg.num_pes(),
        cfg.freq_mhz()
    );
    let _ = writeln!(
        s,
        "{:<7} {:>11} {:>11} {:>8} {:>11} {:>10} {:>10} {:>8}",
        "layer", "paper(ms)", "model(ms)", "delta", "strict(ms)", "loadP(ms)", "loadM(ms)", "delta"
    );
    for (i, (l, st)) in paper_cal.layers.iter().zip(&strict.layers).enumerate() {
        let _ = writeln!(
            s,
            "{:<7} {:>11.2} {:>11.2} {:>+7.1}% {:>11.2} {:>10.2} {:>10.2} {:>+7.1}%",
            l.name,
            paper::FIG9_CONV_MS[i],
            l.conv_ms,
            delta_pct(l.conv_ms, paper::FIG9_CONV_MS[i]),
            st.conv_ms,
            paper::FIG9_LOAD_MS[i],
            l.load_ms,
            delta_pct(l.load_ms, paper::FIG9_LOAD_MS[i]),
        );
    }
    let _ = writeln!(
        s,
        "totals: model {:.1} ms/batch ({:.1} fps, {:.1} GOPS) | strict {:.1} ms ({:.1} fps)",
        paper_cal.total_ms, paper_cal.fps, paper_cal.gops, strict.total_ms, strict.fps
    );
    let _ = writeln!(
        s,
        "paper: 326.2 fps at batch 128, 275.6 fps at batch 4 (the strict conv1 row runs\n\
         the polyphase decomposition, which beats the paper's own strided handling)."
    );
    let p4 = model
        .network(&alex, 4, CycleModel::PaperCalibrated)
        .expect("alexnet maps");
    let _ = writeln!(s, "batch 4: model {:.1} fps (paper 275.6)", p4.fps);
    s
}

/// Regenerates Table IV (memory traffic breakdown, batch 4).
pub fn repro_table4() -> String {
    let model = TrafficModel::new(ChainConfig::paper_576(), MemoryConfig::paper());
    let alex = zoo::alexnet();
    let rows = model.network_traffic(&alex, 4).expect("alexnet maps");
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Table IV: memory communication breakdown, batch 4 (MB) =="
    );
    let _ = writeln!(
        s,
        "{:<7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "layer", "DRAM(p)", "DRAM", "iMem(p)", "iMem", "kMem(p)", "kMem", "oMem(p)", "oMem"
    );
    let mb = |b: u64| b as f64 / 1e6;
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            s,
            "{:<7} {:>9.1} {:>9.2} {:>9.1} {:>9.2} {:>9.1} {:>9.2} {:>9.1} {:>9.2}",
            r.name,
            paper::TABLE4_DRAM[i],
            mb(r.dram_bytes),
            paper::TABLE4_IMEM[i],
            mb(r.imem_bytes),
            paper::TABLE4_KMEM[i],
            mb(r.kmem_bytes),
            paper::TABLE4_OMEM[i],
            mb(r.omem_bytes),
        );
    }
    let t = totals(&rows);
    let _ = writeln!(
        s,
        "{:<7} {:>9.1} {:>9.2} {:>9.1} {:>9.2} {:>9.1} {:>9.2} {:>9.1} {:>9.2}",
        "Total",
        24.5,
        mb(t.dram_bytes),
        26.2,
        mb(t.imem_bytes),
        116.8,
        mb(t.kmem_bytes),
        755.3,
        mb(t.omem_bytes),
    );
    let _ = writeln!(
        s,
        "oMemory matches exactly; iMemory within 10%; kMemory conv2-5 within 6%\n\
         (conv1 anomaly documented); DRAM conv2-5 within 5%, conv1 needs 2.5x less\n\
         under our tiling (kernel-fit criterion, see chain_nn_mem::dataflow)."
    );
    s
}

/// Regenerates Fig. 10 (power breakdown and DaDianNao comparison).
pub fn repro_fig10() -> String {
    let model = PowerModel::new(ChainConfig::paper_576(), MemoryConfig::paper());
    let r = model
        .network_power(&zoo::alexnet(), 4)
        .expect("alexnet maps");
    let b = r.breakdown;
    let mut s = String::new();
    let _ = writeln!(s, "== Fig. 10: power breakdown (AlexNet, batch 4) ==");
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>10} {:>8} {:>8}",
        "component", "paper(mW)", "model(mW)", "paper%", "model%"
    );
    let rows = [
        ("1D chain arch.", paper::FIG10_MW[0], b.chain_mw),
        ("kMemory", paper::FIG10_MW[1], b.kmem_mw),
        ("iMemory", paper::FIG10_MW[2], b.imem_mw),
        ("oMemory", paper::FIG10_MW[3], b.omem_mw),
    ];
    let paper_total: f64 = paper::FIG10_MW.iter().sum();
    for (name, p, m) in rows {
        let _ = writeln!(
            s,
            "{:<16} {:>10.2} {:>10.2} {:>7.1}% {:>7.1}%",
            name,
            p,
            m,
            100.0 * p / paper_total,
            100.0 * m / b.total_mw()
        );
    }
    let _ = writeln!(
        s,
        "total: paper {:.1} mW | model {:.1} mW ({:+.1}%)",
        paper::HEADLINE.0,
        b.total_mw(),
        delta_pct(b.total_mw(), paper::HEADLINE.0)
    );
    let _ = writeln!(s, "\n-- efficiency comparison with DaDianNao [10] --");
    let dd = dadiannao();
    let _ = writeln!(
        s,
        "DaDianNao: {:.1} GOPS, {:.2} W -> core-only {:.1} GOPS/W, total {:.1} GOPS/W",
        dd.peak_gops,
        dd.power_w,
        dadiannao_core_gops_per_watt(),
        dd.gops_per_watt()
    );
    let _ = writeln!(
        s,
        "Chain-NN:  {:.1} GOPS, {:.3} W -> core-only {:.1} GOPS/W (paper {:.1}), total {:.1} GOPS/W (paper {:.1})",
        r.peak_gops,
        b.total_mw() / 1e3,
        r.gops_per_watt_core(),
        paper::HEADLINE.2,
        r.gops_per_watt_total(),
        paper::HEADLINE.1
    );
    let _ = writeln!(
        s,
        "DRAM interface power (excluded from chip totals, as in the paper): {:.1} mW",
        r.dram_mw
    );
    s
}

/// Regenerates Table V (comparison with the state of the art).
pub fn repro_table5() -> String {
    let rows = table_five();
    let mut s = String::new();
    let _ = writeln!(s, "== Table V: comparison with state-of-the-art works ==");
    let _ = writeln!(
        s,
        "{:<24} {:>10} {:>9} {:>14} {:>12} {:>9} {:>9} {:>10} {:>10}",
        "design",
        "tech",
        "gates(k)",
        "on-chip mem",
        "parallelism",
        "MHz",
        "power",
        "GOPS",
        "GOPS/W"
    );
    for r in &rows {
        let _ = writeln!(
            s,
            "{:<24} {:>10} {:>9} {:>14} {:>12} {:>9.0} {:>8.2}W {:>10.1} {:>10.1}",
            r.name,
            r.tech.name(),
            r.gate_count_k
                .map_or("N/A".to_owned(), |g| format!("{g:.0}")),
            r.onchip_memory,
            r.parallelism,
            r.freq_mhz,
            r.power_w,
            r.peak_gops,
            r.gops_per_watt(),
        );
    }
    let ours = rows.last().expect("table has rows");
    let eyeriss28 = rows[1].gops_per_watt_scaled_to(&TechNode::tsmc28());
    let _ = writeln!(
        s,
        "Eyeriss scaled to 28nm (paper's linear rule): {eyeriss28:.1} GOPS/W \
         (paper prints 570.1 from its 245.6 GOPS/W power point; published chip\n\
         specs 84 GOPS / 450 mW give 186.7 -> 433.5 scaled, see EXPERIMENTS.md)"
    );
    let _ = writeln!(
        s,
        "efficiency ratios: {:.1}x vs DaDianNao, {:.1}x vs Eyeriss@28nm \
         (paper claims 2.5x to 4.1x)",
        ours.gops_per_watt() / rows[0].gops_per_watt(),
        ours.gops_per_watt() / eyeriss28,
    );
    s
}

/// Regenerates the Fig. 8 substitute: the area/gate-count report (a
/// layout snapshot cannot be reproduced without the PDK).
pub fn repro_area() -> String {
    let cfg = ChainConfig::paper_576();
    let a = AreaModel::new(cfg);
    let pe = a.pe_gates();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig. 8 substitute: area report (no PDK -> no layout) =="
    );
    let _ = writeln!(s, "per-PE gate breakdown (NAND2 equivalents):");
    for (name, g) in [
        ("16x16 multiplier", pe.multiplier),
        ("32b psum adder", pe.adder),
        ("pipeline registers", pe.registers),
        ("channel/port muxes", pe.muxes),
        ("kMemory control", pe.kmemory_ctrl),
        ("PE control (fitted)", pe.control),
    ] {
        let _ = writeln!(s, "  {name:<22} {g:>8.0}");
    }
    let _ = writeln!(
        s,
        "PE total: {:.2}k gates (paper: 6.51k) | chain total: {:.0}k (paper: 3751k)",
        pe.total() / 1e3,
        a.total_gates() / 1e3
    );
    let _ = writeln!(
        s,
        "on-chip SRAM: {:.1} KB (paper: 352 KB = 32 iMem + 25 oMem + 295 kMem)",
        a.onchip_memory_bytes(32 * 1024, 25 * 1024) as f64 / 1024.0
    );
    let _ = writeln!(
        s,
        "Eyeriss-style PE under the same formulas: {:.2}k gates (paper: 11.02k) -> {:.2}x",
        AreaModel::eyeriss_pe_gates() / 1e3,
        a.gates_per_pe_ratio_vs_eyeriss()
    );
    s
}

/// The taxonomy profile (§III.A) on an AlexNet-conv3-like layer —
/// quantitative backing for Fig. 2.
pub fn repro_taxonomy() -> String {
    let shape = LayerShape::square(8, 13, 16, 3, 1, 1);
    let profiles = compare_classes(&shape, 144).expect("taxonomy shapes map");
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== Fig. 2 taxonomy, measured on C=8 13x13 K=3 M=16 (per MAC) =="
    );
    let _ = writeln!(
        s,
        "{:<16} {:>14} {:>14} {:>12}",
        "class", "SRAM reads", "inter-PE", "utilization"
    );
    for p in profiles {
        let _ = writeln!(
            s,
            "{:<16} {:>14.3} {:>14.3} {:>11.1}%",
            p.class,
            p.sram_reads_per_mac,
            p.inter_pe_per_mac,
            100.0 * p.utilization
        );
    }
    s
}

/// Ablations of the design choices DESIGN.md calls out: MAC pipeline
/// depth (the paper's 3-stage choice), batch size (kernel-load
/// amortization, §V.B), and kMemory depth (the 256-weight choice that
/// sets the ifmap-reload criterion of Table IV).
pub fn repro_ablations() -> String {
    use chain_nn_core::timing::TimingModel;
    use chain_nn_energy::area::AreaModel;
    use chain_nn_mem::dataflow::plan_layer;

    let mut s = String::new();
    let alex = zoo::alexnet();

    // -- pipeline depth --
    let _ = writeln!(
        s,
        "== Ablation: MAC pipeline depth (paper chooses 3 stages) =="
    );
    let _ = writeln!(
        s,
        "{:>7} {:>9} {:>10} {:>8} {:>9} {:>9} {:>10}",
        "stages", "MHz", "peakGOPS", "fps", "mW", "GOPS/W", "gates/PE"
    );
    let timing = TimingModel::fitted_28nm();
    for stages in 1..=6usize {
        let cfg = timing
            .config_at_stages(&ChainConfig::paper_576(), stages)
            .expect("valid config");
        let perf = PerfModel::new(cfg)
            .network(&alex, 128, CycleModel::PaperCalibrated)
            .expect("maps");
        let power = PowerModel::new(cfg, MemoryConfig::paper())
            .network_power(&alex, 128)
            .expect("maps");
        let area = AreaModel::new(cfg);
        let _ = writeln!(
            s,
            "{:>7} {:>9.0} {:>10.1} {:>8.1} {:>9.1} {:>9.1} {:>10.0}{}",
            stages,
            cfg.freq_mhz(),
            cfg.peak_gops(),
            perf.fps,
            power.breakdown.total_mw(),
            power.gops_per_watt_total(),
            area.pe_gates().total(),
            if stages == 3 { "   <- paper" } else { "" },
        );
    }

    // -- batch size --
    let _ = writeln!(
        s,
        "\n== Ablation: batch size (kernels loaded once per batch) =="
    );
    let _ = writeln!(
        s,
        "{:>7} {:>9} {:>11} {:>12}",
        "batch", "fps", "ms/frame", "load share"
    );
    let model = PerfModel::new(ChainConfig::paper_576());
    for batch in [1usize, 2, 4, 16, 64, 128, 256] {
        let p = model
            .network(&alex, batch, CycleModel::PaperCalibrated)
            .expect("maps");
        let load_ms: f64 = p.layers.iter().map(|l| l.load_ms).sum();
        let _ = writeln!(
            s,
            "{:>7} {:>9.1} {:>11.2} {:>11.1}%",
            batch,
            p.fps,
            p.total_ms / batch as f64,
            100.0 * load_ms / p.total_ms,
        );
    }
    let _ = writeln!(
        s,
        "paper: 275.6 fps at batch 4 vs 326.2 at batch 128 — same saturating shape."
    );

    // -- kMemory depth --
    let _ = writeln!(
        s,
        "\n== Ablation: kMemory depth (paper chooses 256 weights/PE) =="
    );
    let _ = writeln!(
        s,
        "{:>7} {:>11} {:>12} {:>14} {:>12}",
        "depth", "kMem KB", "AlexNet DRAM", "VGG-16 DRAM", "resident L"
    );
    for depth in [32usize, 64, 128, 256, 512] {
        let cfg = ChainConfig::builder()
            .num_pes(576)
            .kmemory_depth(depth)
            .build()
            .expect("valid");
        let traffic = TrafficModel::new(cfg, MemoryConfig::paper());
        let a_mb = traffic
            .network_traffic(&alex, 4)
            .expect("maps")
            .iter()
            .map(|r| r.dram_bytes)
            .sum::<u64>() as f64
            / 1e6;
        let vgg = zoo::vgg16();
        let v_mb = traffic
            .network_traffic(&vgg, 4)
            .expect("maps")
            .iter()
            .map(|r| r.dram_bytes)
            .sum::<u64>() as f64
            / 1e6;
        let resident = alex
            .layers()
            .iter()
            .filter(|l| {
                plan_layer(l, &cfg, &MemoryConfig::paper())
                    .expect("plans")
                    .iter()
                    .all(|p| p.ifmap_resident)
            })
            .count();
        let _ = writeln!(
            s,
            "{:>7} {:>11.0} {:>10.1}MB {:>12.1}MB {:>11}/5{}",
            depth,
            (576 * depth * 2) as f64 / 1024.0,
            a_mb,
            v_mb,
            resident,
            if depth == 256 { "  <- paper" } else { "" },
        );
    }
    let _ = writeln!(
        s,
        "deeper kMemory trades RF capacity for DRAM ifmap passes; 256 is where\n\
         AlexNet conv3-5 kernels fit per-tile (C=256) without paying VGG's C=512 twice."
    );
    s
}

/// Concatenates every experiment (EXPERIMENTS.md's data source).
pub fn repro_all() -> String {
    [
        repro_table2(),
        repro_fig5(),
        repro_fig9(),
        repro_table4(),
        repro_fig10(),
        repro_table5(),
        repro_area(),
        repro_taxonomy(),
        repro_ablations(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_runner_produces_its_table() {
        assert!(repro_table2().contains("84.0"));
        assert!(repro_fig9().contains("conv5"));
        assert!(repro_table4().contains("oMem"));
        assert!(repro_fig10().contains("kMemory"));
        assert!(repro_table5().contains("Eyeriss"));
        assert!(repro_area().contains("multiplier"));
        assert!(repro_taxonomy().contains("1D chain"));
    }

    #[test]
    fn fig5_runs_the_simulator() {
        let s = repro_fig5();
        assert!(s.contains("K"));
        assert!(s.contains('x'));
    }

    #[test]
    fn ablations_have_the_expected_shape() {
        let s = repro_ablations();
        // The paper's 3-stage row is marked and runs at ~700 MHz.
        let three = s
            .lines()
            .find(|l| l.contains("<- paper") && l.trim_start().starts_with('3'))
            .expect("3-stage row");
        assert!(three.contains("700"));
        // Batch amortization saturates: fps(256) < 1.05 x fps(64).
        assert!(s.contains("load share"));
        // Deeper kMemory never increases DRAM traffic.
        assert!(s.contains("kMem KB"));
    }

    #[test]
    fn repro_all_contains_all_sections() {
        let s = repro_all();
        for section in [
            "Table II", "Fig. 5", "Fig. 9", "Table IV", "Fig. 10", "Table V", "Fig. 8",
        ] {
            assert!(s.contains(section), "missing {section}");
        }
    }
}
