//! Prints the design-choice ablation studies (pipeline depth, batch
//! size, kMemory depth).
fn main() {
    print!("{}", chain_nn_bench::repro_ablations());
}
