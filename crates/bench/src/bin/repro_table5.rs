//! Prints the paper-vs-measured reproduction for this artifact.
fn main() {
    print!("{}", chain_nn_bench::repro_table5());
}
