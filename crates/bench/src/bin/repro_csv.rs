//! Writes every reproduced table/figure as CSV into `results/` (or a
//! directory given as the first argument).
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_owned());
    fs::create_dir_all(&dir)?;
    for (name, csv) in chain_nn_bench::csv::all_csv() {
        let path = Path::new(&dir).join(format!("{name}.csv"));
        fs::write(&path, csv)?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
