//! Criterion benches of the cycle-accurate chain simulator: how fast the
//! *simulator* runs (simulated-cycles per wall second) across chain sizes
//! and schedules, plus the polyphase path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chain_nn_core::sim::{ChainSim, ChannelMode};
use chain_nn_core::{polyphase, ChainConfig, LayerShape};
use chain_nn_fixed::Fix16;
use chain_nn_tensor::Tensor;

fn tensors(shape: &LayerShape) -> (Tensor<Fix16>, Tensor<Fix16>) {
    let vi = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec(
        [1, shape.c, shape.h, shape.w],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 31) as i16 - 15))
            .collect(),
    )
    .expect("shape consistent");
    let vw = shape.m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [shape.m, shape.c, shape.kh, shape.kw],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 13) as i16 - 6))
            .collect(),
    )
    .expect("shape consistent");
    (ifmap, weights)
}

fn bench_chain_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_sim/pes");
    g.sample_size(10);
    for pes in [36usize, 144, 576] {
        let prims = pes / 9;
        let shape = LayerShape::square(2, 13, prims, 3, 1, 1);
        let (ifmap, weights) = tensors(&shape);
        let sim = ChainSim::new(ChainConfig::builder().num_pes(pes).build().unwrap());
        // Report simulated PE-cycles per wall second.
        let rep = sim.run_layer(&shape, &ifmap, &weights).unwrap();
        g.throughput(Throughput::Elements(rep.stats.total_cycles() * pes as u64));
        g.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |b, _| {
            b.iter(|| sim.run_layer(&shape, &ifmap, &weights).unwrap())
        });
    }
    g.finish();
}

fn bench_kernel_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_sim/kernel");
    g.sample_size(10);
    for k in [3usize, 5, 7] {
        let shape = LayerShape::square(2, 4 * k, 2, k, 1, 0);
        let (ifmap, weights) = tensors(&shape);
        let sim = ChainSim::new(ChainConfig::builder().num_pes(2 * k * k).build().unwrap());
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| sim.run_layer(&shape, &ifmap, &weights).unwrap())
        });
    }
    g.finish();
}

fn bench_channel_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_sim/mode");
    g.sample_size(10);
    let shape = LayerShape::square(2, 15, 2, 3, 1, 1);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(18).build().unwrap());
    for (name, mode) in [("dual", ChannelMode::Dual), ("single", ChannelMode::Single)] {
        g.bench_function(name, |b| {
            b.iter(|| sim.run_layer_with(&shape, &ifmap, &weights, mode).unwrap())
        });
    }
    g.finish();
}

fn bench_polyphase(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_sim/polyphase");
    g.sample_size(10);
    // Shrunken AlexNet conv1: K=11, stride 4.
    let shape = LayerShape::square(1, 39, 2, 11, 4, 0);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(36).build().unwrap());
    g.bench_function("k11_s4", |b| {
        b.iter(|| polyphase::run(&sim, &shape, &ifmap, &weights).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_chain_sizes,
    bench_kernel_sizes,
    bench_channel_modes,
    bench_polyphase
);
criterion_main!(benches);
