//! Criterion benches of the baseline architecture simulators on the same
//! layer, for apples-to-apples simulator cost and for regression-guarding
//! the taxonomy comparison.

use criterion::{criterion_group, criterion_main, Criterion};

use chain_nn_baselines::memory_centric::{AdderTreeConfig, MemCentricSim};
use chain_nn_baselines::spatial_2d::{SpatialConfig, SpatialSim};
use chain_nn_baselines::taxonomy::compare_classes;
use chain_nn_core::sim::ChainSim;
use chain_nn_core::{ChainConfig, LayerShape};
use chain_nn_fixed::Fix16;
use chain_nn_tensor::Tensor;

fn tensors(shape: &LayerShape) -> (Tensor<Fix16>, Tensor<Fix16>) {
    let vi = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec(
        [1, shape.c, shape.h, shape.w],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 23) as i16 - 11))
            .collect(),
    )
    .unwrap();
    let vw = shape.m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [shape.m, shape.c, shape.kh, shape.kw],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 11) as i16 - 5))
            .collect(),
    )
    .unwrap();
    (ifmap, weights)
}

fn bench_three_classes(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/classes");
    g.sample_size(10);
    let shape = LayerShape::square(4, 13, 8, 3, 1, 1);
    let (ifmap, weights) = tensors(&shape);

    let mc = MemCentricSim::new(AdderTreeConfig::diannao());
    g.bench_function("memory_centric", |b| {
        b.iter(|| mc.run_layer(&shape, &ifmap, &weights).unwrap())
    });

    let sp = SpatialSim::new(SpatialConfig::eyeriss());
    g.bench_function("spatial_2d", |b| {
        b.iter(|| sp.run_layer(&shape, &ifmap, &weights).unwrap())
    });

    let chain = ChainSim::new(ChainConfig::builder().num_pes(72).build().unwrap());
    g.bench_function("chain_1d", |b| {
        b.iter(|| chain.run_layer(&shape, &ifmap, &weights).unwrap())
    });
    g.finish();
}

fn bench_taxonomy_report(c: &mut Criterion) {
    let mut g = c.benchmark_group("baselines/taxonomy");
    g.sample_size(10);
    let shape = LayerShape::square(2, 9, 4, 3, 1, 0);
    g.bench_function("compare_classes", |b| {
        b.iter(|| compare_classes(&shape, 36).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_three_classes, bench_taxonomy_report);
criterion_main!(benches);
