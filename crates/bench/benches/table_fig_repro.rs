//! One Criterion bench per paper table/figure: times each regeneration
//! end-to-end (models + simulators + formatting) and pins the experiment
//! harness into `cargo bench --workspace`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chain_nn_bench as repro;

fn bench_tables_and_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("repro");
    g.sample_size(10);
    g.bench_function("table2_utilization", |b| {
        b.iter(|| black_box(repro::repro_table2()))
    });
    g.bench_function("fig5_channel_ablation", |b| {
        b.iter(|| black_box(repro::repro_fig5()))
    });
    g.bench_function("fig9_alexnet_times", |b| {
        b.iter(|| black_box(repro::repro_fig9()))
    });
    g.bench_function("table4_memory_traffic", |b| {
        b.iter(|| black_box(repro::repro_table4()))
    });
    g.bench_function("fig10_power_breakdown", |b| {
        b.iter(|| black_box(repro::repro_fig10()))
    });
    g.bench_function("table5_state_of_the_art", |b| {
        b.iter(|| black_box(repro::repro_table5()))
    });
    g.bench_function("fig8_area_report", |b| {
        b.iter(|| black_box(repro::repro_area()))
    });
    g.bench_function("fig2_taxonomy", |b| {
        b.iter(|| black_box(repro::repro_taxonomy()))
    });
    g.finish();
}

criterion_group!(benches, bench_tables_and_figures);
criterion_main!(benches);
