//! The bench-history runner: quick, machine-readable measurements of
//! the DSE engine and the serving daemon, appended to `BENCH_dse.json`
//! / `BENCH_serve.json` at the repo root and gated against the
//! checked-in baselines under `crates/bench/baselines/`.
//!
//! Run via `scripts/bench-history.sh` (or `cargo bench -p
//! chain-nn-bench --bench bench_history`). The process exits nonzero
//! when the regression gate trips. `CHAIN_NN_BENCH_TOLERANCE`
//! overrides the relative tolerance (default 3.0 — CI runners vary
//! wildly, so the CI gate only catches order-of-magnitude cliffs; the
//! tight-gate behavior is asserted in `history`'s unit tests).

use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use chain_nn_bench::history::{self, BenchRecord};
use chain_nn_dse::{executor, PointCache, SweepSpec};
use chain_nn_serve::server::{Server, ServerConfig};
use chain_nn_serve::{Client, Response};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn now_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn record(bench: &str, metric: &str, value: f64, unit: &str) -> BenchRecord {
    BenchRecord {
        bench: bench.to_owned(),
        metric: metric.to_owned(),
        value,
        unit: unit.to_owned(),
        timestamp_s: now_s(),
    }
}

/// DSE-engine measurements: sustained evaluation throughput and the
/// cold-cache sweep wall clock (best-of-N — noise only adds time).
fn measure_dse() -> Vec<BenchRecord> {
    let spec = SweepSpec {
        pes: (128..=512).step_by(128).collect(),
        freqs_mhz: vec![700.0],
        ..SweepSpec::paper_point()
    };
    let points = spec.points();
    let threads = executor::default_threads();
    let rate = executor::throughput(&points, threads, 5_000).expect("throughput probe");
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let cache = PointCache::new();
        let started = Instant::now();
        executor::run(&points, threads, &cache).expect("sweep runs");
        best = best.min(started.elapsed().as_secs_f64());
    }
    vec![
        record("dse/points_per_sec", "points_per_sec", rate, "points/s"),
        record("dse/sweep_wall", "best_secs", best, "secs"),
    ]
}

/// Daemon measurements over a real TCP session: cache-hit eval round
/// trips (mean µs) and a small cold sweep's wall clock.
fn measure_serve() -> Vec<BenchRecord> {
    let server = Server::bind(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));
    let mut client = Client::connect(addr).expect("connect");

    let sweep = SweepSpec {
        pes: (64..=320).step_by(64).collect(),
        nets: vec!["lenet".to_owned()],
        ..SweepSpec::paper_point()
    };
    let started = Instant::now();
    let Response::Sweep(summary) = client.sweep(sweep).expect("sweep") else {
        panic!("expected a sweep summary");
    };
    let sweep_secs = started.elapsed().as_secs_f64();
    assert!(summary.points > 0);

    // Warm the eval path, then measure cache-hit round trips.
    let point = chain_nn_dse::DesignPoint::paper_alexnet();
    client.eval(point.clone()).expect("warmup eval");
    let rounds = 50;
    let started = Instant::now();
    for _ in 0..rounds {
        let Response::Eval { .. } = client.eval(point.clone()).expect("eval") else {
            panic!("expected an eval reply");
        };
    }
    let eval_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(rounds);

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    vec![
        record("serve/eval_round_trip", "mean_us", eval_us, "us"),
        record("serve/sweep_wall", "best_secs", sweep_secs, "secs"),
    ]
}

/// Appends one suite's records to its history file and gates them
/// against the checked-in baseline. Returns the failures.
fn run_suite(name: &str, records: Vec<BenchRecord>, root: &Path, tolerance: f64) -> Vec<String> {
    let history_path = root.join(format!("BENCH_{name}.json"));
    history::append(&history_path, &records).expect("append history");
    for r in &records {
        println!("{}/{}: {:.3} {}", r.bench, r.metric, r.value, r.unit);
    }
    let baseline_path = root.join(format!("crates/bench/baselines/BASELINE_{name}.json"));
    let baseline = history::load(&baseline_path);
    if baseline.is_empty() {
        println!("bench-history[{name}]: no baseline at {baseline_path:?}; gate skipped");
        return Vec::new();
    }
    let verdict = history::gate(&records, &baseline, tolerance);
    println!(
        "bench-history[{name}]: {} of {} baseline metrics checked, {} regressions",
        verdict.checked,
        baseline.len(),
        verdict.failures.len()
    );
    verdict.failures
}

fn main() {
    let tolerance = std::env::var("CHAIN_NN_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(3.0);
    let root = repo_root();
    let mut failures = Vec::new();
    failures.extend(run_suite("dse", measure_dse(), &root, tolerance));
    failures.extend(run_suite("serve", measure_serve(), &root, tolerance));
    // Paranoia: the freshly-appended lines must parse back — the whole
    // point of the history is machine readability.
    for name in ["dse", "serve"] {
        let loaded = history::load(&root.join(format!("BENCH_{name}.json")));
        assert!(!loaded.is_empty(), "BENCH_{name}.json must parse");
    }
    if !failures.is_empty() {
        eprintln!("bench-history: regression gate FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench-history: regression gate passed (tolerance {tolerance})");
}
