//! The bench-history runner: quick, machine-readable measurements of
//! the DSE engine, the serving daemon, and the mixed-traffic tail
//! latency, appended to `BENCH_dse.json` / `BENCH_serve.json` /
//! `BENCH_mixed.json` / `BENCH_cluster.json` at the repo root and
//! gated against the checked-in baselines under
//! `crates/bench/baselines/`.
//!
//! Run via `scripts/bench-history.sh` (or `cargo bench -p
//! chain-nn-bench --bench bench_history`). The process exits nonzero
//! when the regression gate trips. `CHAIN_NN_BENCH_TOLERANCE`
//! overrides the relative tolerance (default 3.0 — CI runners vary
//! wildly, so the CI gate only catches order-of-magnitude cliffs; the
//! tight-gate behavior is asserted in `history`'s unit tests).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use chain_nn_bench::history::{self, BenchRecord};
use chain_nn_dse::{executor, DesignPoint, PointCache, SweepSpec};
use chain_nn_serve::cluster::{ClusterConfig, Coordinator};
use chain_nn_serve::protocol::Request;
use chain_nn_serve::scheduler::{ClaimPolicy, BATCH_SIZE};
use chain_nn_serve::server::{Server, ServerConfig};
use chain_nn_serve::{Client, Response};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn now_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn record(bench: &str, metric: &str, value: f64, unit: &str) -> BenchRecord {
    BenchRecord {
        bench: bench.to_owned(),
        metric: metric.to_owned(),
        value,
        unit: unit.to_owned(),
        timestamp_s: now_s(),
    }
}

/// DSE-engine measurements: sustained evaluation throughput and the
/// cold-cache sweep wall clock (best-of-N — noise only adds time).
fn measure_dse() -> Vec<BenchRecord> {
    let spec = SweepSpec {
        pes: (128..=512).step_by(128).collect(),
        freqs_mhz: vec![700.0],
        ..SweepSpec::paper_point()
    };
    let points = spec.points();
    let threads = executor::default_threads();
    let rate = executor::throughput(&points, threads, 5_000).expect("throughput probe");
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let cache = PointCache::new();
        let started = Instant::now();
        executor::run(&points, threads, &cache).expect("sweep runs");
        best = best.min(started.elapsed().as_secs_f64());
    }
    vec![
        record("dse/points_per_sec", "points_per_sec", rate, "points/s"),
        record("dse/sweep_wall", "best_secs", best, "secs"),
    ]
}

/// Daemon measurements over a real TCP session: cache-hit eval round
/// trips (mean µs) and a small cold sweep's wall clock.
fn measure_serve() -> Vec<BenchRecord> {
    let server = Server::bind(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));
    let mut client = Client::connect(addr).expect("connect");

    let sweep = SweepSpec {
        pes: (64..=320).step_by(64).collect(),
        nets: vec!["lenet".to_owned()],
        ..SweepSpec::paper_point()
    };
    let started = Instant::now();
    let Response::Sweep(summary) = client.sweep(sweep).expect("sweep") else {
        panic!("expected a sweep summary");
    };
    let sweep_secs = started.elapsed().as_secs_f64();
    assert!(summary.points > 0);

    // Warm the eval path, then measure cache-hit round trips.
    let point = chain_nn_dse::DesignPoint::paper_alexnet();
    client.eval(point.clone()).expect("warmup eval");
    let rounds = 50;
    let started = Instant::now();
    for _ in 0..rounds {
        let Response::Eval { .. } = client.eval(point.clone()).expect("eval") else {
            panic!("expected an eval reply");
        };
    }
    let eval_us = started.elapsed().as_secs_f64() * 1e6 / f64::from(rounds);

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    vec![
        record("serve/eval_round_trip", "mean_us", eval_us, "us"),
        record("serve/sweep_wall", "best_secs", sweep_secs, "secs"),
    ]
}

/// One mixed-traffic round: a 2-worker daemon under the given claim
/// policy serves a ~2000-point cold sweep while a client pumps fresh
/// one-point evals at it for the sweep's whole duration.
/// Returns the daemon's `serve_queue_wait_ns{type=eval}` p50 and p99
/// in nanoseconds, plus the pump's eval count.
fn eval_wait_under_sweep(claim: ClaimPolicy) -> (f64, f64, usize) {
    let server = Server::bind(ServerConfig {
        threads: 2,
        claim,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));
    let mut pump = Client::connect(addr).expect("connect pump");

    // Fresh (cache-cold) pump points, disjoint from the sweep grid:
    // cache hits are answered inline and never queue, so only a cold
    // eval exercises the queue wait the claim policy controls.
    let pump_point = |i: usize| DesignPoint {
        pes: 40 + i,
        ..DesignPoint::paper_alexnet()
    };

    let sweep_done = AtomicBool::new(false);
    let pumped = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut sweeper = Client::connect(addr).expect("connect sweeper");
            // vgg16, the costliest zoo net: the sweep must last long
            // enough in this optimized build for the pump to collect
            // hundreds of racing evals.
            let grid = SweepSpec {
                pes: (16..=1024).collect(),
                freqs_mhz: vec![350.0, 700.0],
                nets: vec!["vgg16".to_owned()],
                ..SweepSpec::paper_point()
            };
            let Response::Sweep(summary) = sweeper.sweep(grid).expect("sweep") else {
                panic!("expected a sweep summary");
            };
            assert_eq!(summary.points, 2018);
            sweep_done.store(true, Ordering::SeqCst);
        });
        // Wait until the sweep is admitted and still deep before
        // pumping (stats is served inline, not queued).
        loop {
            if sweep_done.load(Ordering::SeqCst) {
                break;
            }
            let Response::Stats(stats) = pump.stats().expect("stats") else {
                panic!("expected a stats reply");
            };
            if stats.queue_depth >= 1000 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut pumped = 0usize;
        while !sweep_done.load(Ordering::SeqCst) {
            let Response::Eval { .. } = pump.eval(pump_point(pumped)).expect("eval") else {
                panic!("expected an eval reply");
            };
            pumped += 1;
        }
        pumped
    });
    let Response::Metrics { snapshot } = pump.metrics().expect("metrics") else {
        panic!("expected a metrics reply");
    };
    pump.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");

    let wait = snapshot
        .histogram("serve_queue_wait_ns", &[("type", "eval")])
        .expect("eval queue-wait histogram");
    (wait.p50, wait.p99, pumped)
}

/// Mixed-traffic tail latency: one-point evals racing a ~2000-point
/// sweep, measured under the adaptive claim policy (the gated rows)
/// and under the fixed-batch baseline it must beat (recorded for the
/// history, not baselined — its value is the comparison printed
/// below). If adaptivity breaks, the adaptive p99 reverts to
/// fixed-batch territory (~8x) and trips the gate on its own row.
fn measure_mixed() -> Vec<BenchRecord> {
    let (_, fixed_p99, fixed_n) = eval_wait_under_sweep(ClaimPolicy::Fixed(BATCH_SIZE));
    let (p50, p99, n) = eval_wait_under_sweep(ClaimPolicy::Adaptive { max: BATCH_SIZE });
    println!(
        "mixed: eval queue-wait p99 {:.1} us adaptive vs {:.1} us fixed \
         ({:.1}x better; {n} / {fixed_n} evals pumped)",
        p99 / 1e3,
        fixed_p99 / 1e3,
        fixed_p99 / p99.max(1.0),
    );
    vec![
        record("mixed/eval_wait_under_sweep", "p50_us", p50 / 1e3, "us"),
        record("mixed/eval_wait_under_sweep", "p99_us", p99 / 1e3, "us"),
        record(
            "mixed/eval_wait_fixed_batch",
            "p99_us",
            fixed_p99 / 1e3,
            "us",
        ),
    ]
}

/// Binds an `n`-shard fleet (single-worker shards, cold caches) behind
/// a coordinator and returns everything needed to drive and drain it.
#[allow(clippy::type_complexity)]
fn cluster_fleet(
    n: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
    Vec<std::thread::JoinHandle<chain_nn_serve::server::ServerReport>>,
) {
    let mut addrs = Vec::new();
    let mut shards = Vec::new();
    for _ in 0..n {
        let server = Server::bind(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        })
        .expect("bind shard");
        addrs.push(server.local_addr().expect("addr").to_string());
        shards.push(std::thread::spawn(move || {
            server.run().expect("shard runs")
        }));
    }
    let coordinator = Coordinator::bind(ClusterConfig {
        shards: addrs,
        ..ClusterConfig::default()
    })
    .expect("bind coordinator");
    let addr = coordinator.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        coordinator.run().expect("coordinator runs");
    });
    (addr, handle, shards)
}

/// Cluster measurements: the same cold sweep through 1/2/4/8-shard
/// fleets (hash-partitioned across single-worker shards — the scaling
/// curve is near-linear given cores to spread over and flat on a
/// single-core host, which the checked-in baseline reflects), plus
/// cache-hit eval throughput sequential vs pipelined on one daemon.
fn measure_cluster() -> Vec<BenchRecord> {
    let spec = SweepSpec {
        pes: (16..=256).step_by(8).collect(),
        freqs_mhz: vec![350.0, 700.0],
        nets: vec!["lenet".to_owned()],
        ..SweepSpec::paper_point()
    };
    let mut records = Vec::new();
    let mut one_shard_wall = f64::NAN;
    for n in [1usize, 2, 4, 8] {
        let (addr, coordinator, shards) = cluster_fleet(n);
        let mut client = Client::connect(addr).expect("connect coordinator");
        let started = Instant::now();
        let Response::Sweep(summary) = client.sweep(spec.clone()).expect("sweep") else {
            panic!("expected a sweep summary");
        };
        let wall = started.elapsed().as_secs_f64();
        assert_eq!(summary.cache_misses, spec.len() as u64);
        assert!(!summary.degraded);
        client.shutdown().expect("shutdown");
        coordinator.join().expect("coordinator thread");
        for shard in shards {
            shard.join().expect("shard thread");
        }
        records.push(record(
            &format!("cluster/sweep_wall_{n}shard"),
            "secs",
            wall,
            "secs",
        ));
        if n == 1 {
            one_shard_wall = wall;
        } else {
            println!(
                "cluster: {n}-shard sweep {:.2}x vs 1 shard ({wall:.3}s)",
                one_shard_wall / wall
            );
        }
    }

    // Pipelining vs lockstep, cache-hit evals against one shard daemon.
    let server = Server::bind(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));
    let mut client = Client::connect(addr).expect("connect");
    let point = DesignPoint {
        net: "lenet".to_owned(),
        ..DesignPoint::paper_alexnet()
    };
    client.eval(point.clone()).expect("warmup eval");
    let rounds = 300u32;
    let started = Instant::now();
    for _ in 0..rounds {
        let Response::Eval { .. } = client.eval(point.clone()).expect("eval") else {
            panic!("expected an eval reply");
        };
    }
    let sequential = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let ids: Vec<u64> = (0..rounds)
        .map(|_| {
            client
                .pipeline(&Request::Eval(point.clone()))
                .expect("pipeline")
        })
        .collect();
    for id in ids {
        client.recv_reply(id).expect("reply");
    }
    let pipelined = started.elapsed().as_secs_f64();
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
    let seq_rate = f64::from(rounds) / sequential;
    let pipe_rate = f64::from(rounds) / pipelined;
    println!(
        "cluster: pipelined evals {pipe_rate:.0}/s vs {seq_rate:.0}/s lockstep \
         ({:.1}x)",
        pipe_rate / seq_rate
    );
    records.push(record(
        "cluster/eval_lockstep",
        "requests_per_sec",
        seq_rate,
        "req/s",
    ));
    records.push(record(
        "cluster/eval_pipelined",
        "requests_per_sec",
        pipe_rate,
        "req/s",
    ));
    records
}

/// Appends one suite's records to its history file and gates them
/// against the checked-in baseline. Returns the failures.
fn run_suite(name: &str, records: Vec<BenchRecord>, root: &Path, tolerance: f64) -> Vec<String> {
    let history_path = root.join(format!("BENCH_{name}.json"));
    history::append(&history_path, &records).expect("append history");
    for r in &records {
        println!("{}/{}: {:.3} {}", r.bench, r.metric, r.value, r.unit);
    }
    let baseline_path = root.join(format!("crates/bench/baselines/BASELINE_{name}.json"));
    let baseline = history::load(&baseline_path);
    if baseline.is_empty() {
        println!("bench-history[{name}]: no baseline at {baseline_path:?}; gate skipped");
        return Vec::new();
    }
    let verdict = history::gate(&records, &baseline, tolerance);
    println!(
        "bench-history[{name}]: {} of {} baseline metrics checked, {} regressions",
        verdict.checked,
        baseline.len(),
        verdict.failures.len()
    );
    verdict.failures
}

fn main() {
    let tolerance = std::env::var("CHAIN_NN_BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(3.0);
    let root = repo_root();
    let mut failures = Vec::new();
    failures.extend(run_suite("dse", measure_dse(), &root, tolerance));
    failures.extend(run_suite("serve", measure_serve(), &root, tolerance));
    failures.extend(run_suite("mixed", measure_mixed(), &root, tolerance));
    failures.extend(run_suite("cluster", measure_cluster(), &root, tolerance));
    // Paranoia: the freshly-appended lines must parse back — the whole
    // point of the history is machine readability.
    for name in ["dse", "serve", "mixed", "cluster"] {
        let loaded = history::load(&root.join(format!("BENCH_{name}.json")));
        assert!(!loaded.is_empty(), "BENCH_{name}.json must parse");
    }
    if !failures.is_empty() {
        eprintln!("bench-history: regression gate FAILED");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("bench-history: regression gate passed (tolerance {tolerance})");
}
