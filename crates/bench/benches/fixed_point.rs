//! Criterion benches of the fixed-point substrate: quantization, MAC
//! loops, and the golden-model convolution the simulator is checked
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use chain_nn_fixed::{quantize_slice, Acc32, Fix16, OverflowMode, QFormat};
use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};
use chain_nn_tensor::Tensor;

fn bench_quantize(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed/quantize");
    let xs: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.137).sin() * 4.0).collect();
    let fmt = QFormat::new(12).unwrap();
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("4096", |b| b.iter(|| black_box(quantize_slice(&xs, fmt))));
    g.finish();
}

fn bench_mac_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed/mac");
    let xs: Vec<Fix16> = (0..4096)
        .map(|i| Fix16::from_raw((i % 251) as i16))
        .collect();
    let ws: Vec<Fix16> = (0..4096)
        .map(|i| Fix16::from_raw((i % 127) as i16 - 64))
        .collect();
    g.throughput(Throughput::Elements(4096));
    g.bench_function("wrapping", |b| {
        b.iter(|| {
            let mut acc = Acc32::ZERO;
            for (&x, &w) in xs.iter().zip(&ws) {
                acc = acc.mac(x, w);
            }
            black_box(acc)
        })
    });
    g.bench_function("saturating", |b| {
        b.iter(|| {
            let mut acc = Acc32::ZERO;
            for (&x, &w) in xs.iter().zip(&ws) {
                acc = acc.mac_with(x, w, OverflowMode::Saturating);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_golden_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed/golden_conv");
    g.sample_size(10);
    for (name, cch, h, m, k) in [
        ("small", 2usize, 13usize, 4usize, 3usize),
        ("wide", 8, 13, 16, 3),
    ] {
        let vi = cch * h * h;
        let ifmap = Tensor::from_vec(
            [1, cch, h, h],
            (0..vi).map(|i| Fix16::from_raw((i % 19) as i16)).collect(),
        )
        .unwrap();
        let vw = m * cch * k * k;
        let weights = Tensor::from_vec(
            [m, cch, k, k],
            (0..vw)
                .map(|i| Fix16::from_raw((i % 7) as i16 - 3))
                .collect(),
        )
        .unwrap();
        let geom = ConvGeometry::new(k, 1, 1).unwrap();
        g.throughput(Throughput::Elements((m * h * h * cch * k * k) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| conv2d_fix(&ifmap, &weights, geom, OverflowMode::Wrapping).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_quantize, bench_mac_chain, bench_golden_conv);
criterion_main!(benches);
