//! Benches of the design-space exploration engine: points evaluated
//! per second at 1 vs N worker threads (queue + model-stack cost, cold
//! cache every iteration), plus the cache-hit fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use chain_nn_dse::{executor, Explorer, PointCache, SweepSpec};

fn sweep_spec() -> SweepSpec {
    SweepSpec {
        pes: (128..=1024).step_by(64).collect(),
        freqs_mhz: vec![350.0, 700.0],
        kmem_depths: vec![128, 256],
        ..SweepSpec::paper_point()
    }
}

fn bench_points_per_sec(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/points_per_sec");
    g.sample_size(10);
    let points = sweep_spec().points();
    let evals = 8 * points.len();
    g.throughput(Throughput::Elements(evals as u64));
    let mut counts = vec![1usize, 2, executor::default_threads()];
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            // The probe amortizes worker spawn, so this measures the
            // sustained 1-vs-N-thread evaluation rate.
            b.iter(|| black_box(executor::throughput(&points, t, evals).unwrap()))
        });
    }
    g.finish();
}

fn bench_sweep_wall_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/sweep_wall");
    g.sample_size(10);
    let points = sweep_spec().points();
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("cold_cache", |b| {
        b.iter(|| {
            // Fresh cache: one full end-to-end sweep including spawn.
            let cache = PointCache::new();
            black_box(executor::run(&points, executor::default_threads(), &cache).unwrap())
        })
    });
    g.finish();
}

/// Paired-ratio overhead estimate shared by the three overhead guards
/// below. Each round measures the two modes back-to-back (alternating
/// which goes first to cancel ordering bias) and the result is the
/// median of the per-round enabled/disabled ratios. Pairing makes both
/// modes see the same machine load within a round, and the median
/// discards rounds where load shifted between the pair — on shared
/// hardware with ±15% drift neither min-of-N nor averaging converges,
/// but this does.
fn median_overhead(
    rounds: usize,
    mut set_mode: impl FnMut(bool),
    mut sample: impl FnMut() -> f64,
) -> f64 {
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let first_on = round % 2 == 0;
        set_mode(first_on);
        let a = sample();
        set_mode(!first_on);
        let b = sample();
        let (on, off) = if first_on { (a, b) } else { (b, a) };
        ratios.push(on / off);
    }
    ratios.sort_by(f64::total_cmp);
    ratios[rounds / 2] - 1.0
}

/// The assert statistic for the overhead guards: the minimum of three
/// independent [`median_overhead`] windows. A real regression raises
/// every window's median, while a load spike biases only the window it
/// lands in, so the min keeps the guard sensitive to true cost growth
/// without flaking when one whole window ran on a busy machine.
fn guard_overhead(mut set_mode: impl FnMut(bool), mut sample: impl FnMut() -> f64) -> f64 {
    (0..3)
        .map(|_| median_overhead(17, &mut set_mode, &mut sample))
        .fold(f64::INFINITY, f64::min)
}

/// The observability overhead guard: the same cold sweep with the
/// process-global registry recording vs disabled must stay within a
/// few percent. Instrumentation on the executor hot path is one
/// timestamp pair + one histogram record per claimed chunk, so the
/// delta should be noise; the assert catches it ever growing into a
/// real cost. Runs as part of `cargo bench` (criterion's shim executes
/// `main`, so the assert is exercised on every bench run).
fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/obs_overhead");
    g.sample_size(10);
    let points = sweep_spec().points();
    let threads = executor::default_threads();
    g.throughput(Throughput::Elements(points.len() as u64));
    // One sample is the total of 16 back-to-back sweeps: a single sweep
    // is ~150 µs, small enough that scheduler jitter swamps a 3% bound,
    // so each measured unit averages the jitter before min-selection.
    let sweep_secs = |samples: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let started = std::time::Instant::now();
            for _ in 0..16 {
                let cache = PointCache::new();
                black_box(executor::run(&points, threads, &cache).unwrap());
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };
    // Span recording is off throughout so this guard isolates the
    // metrics-registry cost (the span ring has its own guard below).
    let spans = chain_nn_obs::trace::spans();
    spans.set_enabled(false);
    let obs = chain_nn_obs::global();
    obs.set_enabled(true);
    let _ = sweep_secs(2); // warm spawn paths
    let overhead = guard_overhead(|on| obs.set_enabled(on), || sweep_secs(1));
    obs.set_enabled(true);
    spans.set_enabled(true);
    println!(
        "dse/obs_overhead: min of 3 medians (17 paired rounds each), overhead {:+.2}%",
        overhead * 1e2
    );
    assert!(
        overhead < 0.03,
        "observability overhead {:.2}% exceeds the 3% guard",
        overhead * 1e2
    );
    g.bench_function("enabled_cold_cache", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            black_box(executor::run(&points, threads, &cache).unwrap())
        })
    });
    g.finish();
}

/// The span-recording overhead guard: the same cold sweep with the
/// process-global span ring recording vs disabled must stay within 3%.
/// Recording is one lock-free ring-slot write per claimed chunk plus
/// one per run, so the delta should be noise; the assert catches the
/// causal-tracing layer ever growing into a real cost on `dse`
/// throughput. The metrics registry stays enabled throughout — this
/// isolates the *span* cost from the (separately guarded) metrics cost.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/trace_overhead");
    g.sample_size(10);
    let points = sweep_spec().points();
    let threads = executor::default_threads();
    g.throughput(Throughput::Elements(points.len() as u64));
    // One sample is the total of 16 back-to-back sweeps: a single sweep
    // is ~150 µs, small enough that scheduler jitter swamps a 3% bound,
    // so each measured unit averages the jitter before min-selection.
    let sweep_secs = |samples: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let started = std::time::Instant::now();
            for _ in 0..16 {
                let cache = PointCache::new();
                black_box(executor::run(&points, threads, &cache).unwrap());
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };
    let spans = chain_nn_obs::trace::spans();
    spans.set_enabled(true);
    let _ = sweep_secs(2); // warm spawn paths
    let overhead = guard_overhead(|on| spans.set_enabled(on), || sweep_secs(1));
    spans.set_enabled(true);
    println!(
        "dse/trace_overhead: min of 3 medians (17 paired rounds each), overhead {:+.2}%",
        overhead * 1e2
    );
    assert!(
        overhead < 0.03,
        "span recording overhead {:.2}% exceeds the 3% guard",
        overhead * 1e2
    );
    g.bench_function("traced_cold_cache", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            black_box(executor::run(&points, threads, &cache).unwrap())
        })
    });
    g.finish();
}

/// The sampler overhead guard: the cold sweep with a background thread
/// snapshotting the process-global registry every 10 ms (the daemon's
/// time-series sampler, sped up 25×) vs no sampler must stay within
/// 3%. A snapshot clones the registry's maps under its lock, so this
/// guards the only way the sampler could tax the evaluation hot path —
/// lock contention with the executor's metric records.
fn bench_sampler_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/sampler_overhead");
    g.sample_size(10);
    let points = sweep_spec().points();
    let threads = executor::default_threads();
    g.throughput(Throughput::Elements(points.len() as u64));
    // One sample is the total of 16 back-to-back sweeps: a single sweep
    // is ~150 µs, small enough that scheduler jitter swamps a 3% bound,
    // so each measured unit averages the jitter before min-selection.
    let sweep_secs = |samples: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let started = std::time::Instant::now();
            for _ in 0..16 {
                let cache = PointCache::new();
                black_box(executor::run(&points, threads, &cache).unwrap());
            }
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };
    let _ = sweep_secs(2); // warm spawn paths
                           // The sampler thread runs throughout but is paused on the "off"
                           // half of each paired round (see median_overhead).
    let stop = std::sync::atomic::AtomicBool::new(false);
    let pause = std::sync::atomic::AtomicBool::new(true);
    let overhead = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut series =
                chain_nn_obs::timeseries::TimeSeries::new(std::time::Duration::from_millis(10), 64);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if !pause.load(std::sync::atomic::Ordering::Relaxed) {
                    series.sample(chain_nn_obs::global());
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
        let overhead = guard_overhead(
            |on| pause.store(!on, std::sync::atomic::Ordering::Relaxed),
            || sweep_secs(1),
        );
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        overhead
    });
    println!(
        "dse/sampler_overhead: min of 3 medians (17 paired rounds each), overhead {:+.2}%",
        overhead * 1e2
    );
    assert!(
        overhead < 0.03,
        "sampler overhead {:.2}% exceeds the 3% guard",
        overhead * 1e2
    );
    g.bench_function("sampled_cold_cache", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            black_box(executor::run(&points, threads, &cache).unwrap())
        })
    });
    g.finish();
}

fn bench_cache_hit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/cache_hits");
    let spec = sweep_spec();
    let mut explorer = Explorer::new();
    explorer.run(&spec, executor::default_threads()).unwrap();
    g.throughput(Throughput::Elements(spec.len() as u64));
    g.bench_function("warm_sweep", |b| {
        b.iter(|| black_box(explorer.run(&spec, executor::default_threads()).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_points_per_sec,
    bench_sweep_wall_clock,
    bench_obs_overhead,
    bench_trace_overhead,
    bench_sampler_overhead,
    bench_cache_hit_path
);
criterion_main!(benches);
