//! Benches of the design-space exploration engine: points evaluated
//! per second at 1 vs N worker threads (queue + model-stack cost, cold
//! cache every iteration), plus the cache-hit fast path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use chain_nn_dse::{executor, Explorer, PointCache, SweepSpec};

fn sweep_spec() -> SweepSpec {
    SweepSpec {
        pes: (128..=1024).step_by(64).collect(),
        freqs_mhz: vec![350.0, 700.0],
        kmem_depths: vec![128, 256],
        ..SweepSpec::paper_point()
    }
}

fn bench_points_per_sec(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/points_per_sec");
    g.sample_size(10);
    let points = sweep_spec().points();
    let evals = 8 * points.len();
    g.throughput(Throughput::Elements(evals as u64));
    let mut counts = vec![1usize, 2, executor::default_threads()];
    counts.sort_unstable();
    counts.dedup();
    for threads in counts {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            // The probe amortizes worker spawn, so this measures the
            // sustained 1-vs-N-thread evaluation rate.
            b.iter(|| black_box(executor::throughput(&points, t, evals).unwrap()))
        });
    }
    g.finish();
}

fn bench_sweep_wall_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/sweep_wall");
    g.sample_size(10);
    let points = sweep_spec().points();
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("cold_cache", |b| {
        b.iter(|| {
            // Fresh cache: one full end-to-end sweep including spawn.
            let cache = PointCache::new();
            black_box(executor::run(&points, executor::default_threads(), &cache).unwrap())
        })
    });
    g.finish();
}

/// The observability overhead guard: the same cold sweep with the
/// process-global registry recording vs disabled must stay within a
/// few percent. Instrumentation on the executor hot path is one
/// timestamp pair + one histogram record per claimed chunk, so the
/// delta should be noise; the assert catches it ever growing into a
/// real cost. Runs as part of `cargo bench` (criterion's shim executes
/// `main`, so the assert is exercised on every bench run).
fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/obs_overhead");
    g.sample_size(10);
    let points = sweep_spec().points();
    let threads = executor::default_threads();
    g.throughput(Throughput::Elements(points.len() as u64));
    let sweep_secs = |samples: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let cache = PointCache::new();
            let started = std::time::Instant::now();
            black_box(executor::run(&points, threads, &cache).unwrap());
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };
    // Warm up spawn paths, then take best-of-N for each mode: the
    // minimum is the right statistic for a regression bound (noise
    // only ever adds time).
    let obs = chain_nn_obs::global();
    obs.set_enabled(true);
    let _ = sweep_secs(2);
    let enabled = sweep_secs(10);
    obs.set_enabled(false);
    let disabled = sweep_secs(10);
    obs.set_enabled(true);
    let overhead = enabled / disabled - 1.0;
    println!(
        "dse/obs_overhead: enabled {:.3} ms, disabled {:.3} ms, overhead {:+.2}%",
        enabled * 1e3,
        disabled * 1e3,
        overhead * 1e2
    );
    assert!(
        overhead < 0.03,
        "observability overhead {:.2}% exceeds the 3% guard",
        overhead * 1e2
    );
    g.bench_function("enabled_cold_cache", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            black_box(executor::run(&points, threads, &cache).unwrap())
        })
    });
    g.finish();
}

/// The sampler overhead guard: the cold sweep with a background thread
/// snapshotting the process-global registry every 10 ms (the daemon's
/// time-series sampler, sped up 25×) vs no sampler must stay within
/// 3%. A snapshot clones the registry's maps under its lock, so this
/// guards the only way the sampler could tax the evaluation hot path —
/// lock contention with the executor's metric records.
fn bench_sampler_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/sampler_overhead");
    g.sample_size(10);
    let points = sweep_spec().points();
    let threads = executor::default_threads();
    g.throughput(Throughput::Elements(points.len() as u64));
    let sweep_secs = |samples: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let cache = PointCache::new();
            let started = std::time::Instant::now();
            black_box(executor::run(&points, threads, &cache).unwrap());
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };
    let _ = sweep_secs(2); // warm spawn paths
    let without = sweep_secs(10);
    let stop = std::sync::atomic::AtomicBool::new(false);
    let with = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut series =
                chain_nn_obs::timeseries::TimeSeries::new(std::time::Duration::from_millis(10), 64);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                series.sample(chain_nn_obs::global());
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
        let with = sweep_secs(10);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        with
    });
    let overhead = with / without - 1.0;
    println!(
        "dse/sampler_overhead: sampling {:.3} ms, idle {:.3} ms, overhead {:+.2}%",
        with * 1e3,
        without * 1e3,
        overhead * 1e2
    );
    assert!(
        overhead < 0.03,
        "sampler overhead {:.2}% exceeds the 3% guard",
        overhead * 1e2
    );
    g.bench_function("sampled_cold_cache", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            black_box(executor::run(&points, threads, &cache).unwrap())
        })
    });
    g.finish();
}

fn bench_cache_hit_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("dse/cache_hits");
    let spec = sweep_spec();
    let mut explorer = Explorer::new();
    explorer.run(&spec, executor::default_threads()).unwrap();
    g.throughput(Throughput::Elements(spec.len() as u64));
    g.bench_function("warm_sweep", |b| {
        b.iter(|| black_box(explorer.run(&spec, executor::default_threads()).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_points_per_sec,
    bench_sweep_wall_clock,
    bench_obs_overhead,
    bench_sampler_overhead,
    bench_cache_hit_path
);
criterion_main!(benches);
