//! Criterion wrapper for the design-choice ablation sweeps, so `cargo
//! bench` regenerates them alongside the paper tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("pipeline_batch_kmemory", |b| {
        b.iter(|| black_box(chain_nn_bench::repro_ablations()))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
