//! Benches of the explorer serving daemon over real loopback TCP:
//! requests/second for the protocol fast path (`stats`), warm-cache
//! single-point evaluation, and a warm repeated sweep. Each measures
//! one blocking client round trip including encode/decode on both
//! sides, so the numbers are what a real client experiences.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use chain_nn_dse::{DesignPoint, SweepSpec};
use chain_nn_serve::protocol::Response;
use chain_nn_serve::{Client, Server, ServerConfig};

struct Daemon {
    addr: std::net::SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start() -> Daemon {
        let server = Server::bind(ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            server.run().expect("daemon runs");
        });
        Daemon {
            addr,
            handle: Some(handle),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Ok(mut c) = Client::connect(self.addr) {
            let _ = c.shutdown();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn sweep_spec() -> SweepSpec {
    SweepSpec {
        pes: (128..=1024).step_by(64).collect(),
        freqs_mhz: vec![350.0, 700.0],
        ..SweepSpec::paper_point()
    }
}

fn bench_requests_per_sec(c: &mut Criterion) {
    let daemon = Daemon::start();
    let mut g = c.benchmark_group("serve/requests_per_sec");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1));

    // Protocol floor: no evaluation at all, just round trip + counters.
    let mut stats_client = Client::connect(daemon.addr).expect("connect");
    g.bench_function("stats", |b| {
        b.iter(|| black_box(stats_client.stats().expect("stats")))
    });

    // Warm-cache eval: one point, answered from the shared cache.
    let mut eval_client = Client::connect(daemon.addr).expect("connect");
    let point = DesignPoint::paper_alexnet();
    eval_client.eval(point.clone()).expect("prime the cache");
    g.bench_function("eval_warm", |b| {
        b.iter(|| black_box(eval_client.eval(point.clone()).expect("eval")))
    });
    g.finish();
    drop(daemon);
}

fn bench_sweep_round_trips(c: &mut Criterion) {
    let daemon = Daemon::start();
    let mut g = c.benchmark_group("serve/sweep_warm");
    g.sample_size(10);
    let spec = sweep_spec();
    g.throughput(Throughput::Elements(spec.len() as u64));
    let mut client = Client::connect(daemon.addr).expect("connect");
    match client.sweep(spec.clone()).expect("prime the cache") {
        Response::Sweep(s) => assert_eq!(s.cache_misses as usize, spec.len()),
        other => panic!("expected sweep, got {other:?}"),
    }
    g.bench_function("points_per_sec", |b| {
        b.iter(|| black_box(client.sweep(spec.clone()).expect("sweep")))
    });
    g.finish();
    drop(daemon);
}

criterion_group!(benches, bench_requests_per_sec, bench_sweep_round_trips);
criterion_main!(benches);
