//! Benches of the budget-constrained auto-tuner against the exhaustive
//! sweep it replaces: wall time per tune on a cold and warm cache, and
//! the exhaustive sweep of the same grid for scale. The interesting
//! number is not the microseconds — evaluations are closed-form — but
//! the ratio holding up as grids grow past what sweeping can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use chain_nn_dse::{executor, PointCache, WorkloadMix};
use chain_nn_tuner::{tune, Budget, CacheEvaluator, TuneRequest};

fn request() -> TuneRequest {
    TuneRequest {
        budget: Budget {
            max_system_mw: Some(500.0),
            ..Budget::default()
        },
        ..TuneRequest::default()
    }
}

fn bench_tune_vs_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner/default_grid_500mw");
    g.sample_size(10);
    let req = request();
    let grid = req.space.points();
    g.throughput(Throughput::Elements(1));

    g.bench_function("tune_cold", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            let report = tune(&req, &mut CacheEvaluator::new(&cache, 1)).expect("tune");
            black_box(report.best)
        })
    });

    let warm = PointCache::new();
    tune(&req, &mut CacheEvaluator::new(&warm, 1)).expect("prime");
    g.bench_function("tune_warm", |b| {
        b.iter(|| {
            let report = tune(&req, &mut CacheEvaluator::new(&warm, 1)).expect("tune");
            black_box(report.evaluations)
        })
    });

    g.bench_function("exhaustive_sweep", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            black_box(executor::run(&grid, 1, &cache).expect("sweep").len())
        })
    });
    g.finish();
}

fn bench_mix_tune(c: &mut Criterion) {
    let mut g = c.benchmark_group("tuner/mix_70_30");
    g.sample_size(10);
    let req = TuneRequest {
        mix: WorkloadMix::parse("alexnet:0.7,vgg16:0.3").expect("mix"),
        ..request()
    };
    g.bench_function("tune_cold", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            let report = tune(&req, &mut CacheEvaluator::new(&cache, 1)).expect("tune");
            black_box(report.best)
        })
    });
    g.finish();
}

/// The frontier sweep against its naïve alternative: 13 standalone
/// tunes on fresh caches. The sweep's pooled evaluations + warm start
/// should land it within a small multiple of ONE tune, not thirteen.
fn bench_frontier_sweep(c: &mut Criterion) {
    use chain_nn_tuner::{tune_frontier, BudgetSweep, FrontierTuneRequest, TuneRequest};

    let mut g = c.benchmark_group("tuner/frontier_300_900_mw");
    g.sample_size(10);
    let req = FrontierTuneRequest {
        base: TuneRequest::default(),
        sweep: BudgetSweep::parse("max-mw=300..=900:50").expect("sweep"),
    };
    g.throughput(Throughput::Elements(req.sweep.values.len() as u64));

    g.bench_function("frontier_sweep_cold", |b| {
        b.iter(|| {
            let cache = PointCache::new();
            let report = tune_frontier(&req, &mut CacheEvaluator::new(&cache, 1), |_, _| Ok(()))
                .expect("frontier tune");
            black_box(report.frontier.len())
        })
    });

    g.bench_function("standalone_tunes_cold", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &mw in &req.sweep.values {
                let cache = PointCache::new();
                let single = TuneRequest {
                    budget: Budget {
                        max_system_mw: Some(mw),
                        ..Budget::default()
                    },
                    ..TuneRequest::default()
                };
                let report = tune(&single, &mut CacheEvaluator::new(&cache, 1)).expect("tune");
                found += usize::from(report.best.is_some());
            }
            black_box(found)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tune_vs_exhaustive,
    bench_mix_tune,
    bench_frontier_sweep
);
criterion_main!(benches);
