//! Criterion benches of the column-wise scan schedule generator: feed,
//! mux-select and emit rates (these run once per simulated cycle, so
//! their cost bounds the whole simulator).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use chain_nn_core::schedule::{DualChannelSchedule, InputSchedule, SingleChannelSchedule};

fn bench_feed(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule/feed");
    for k in [3usize, 5, 11] {
        let s = DualChannelSchedule::new(k, k, 64).unwrap();
        g.throughput(Throughput::Elements(s.duration() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for t in 1..=s.duration() {
                    for px in s.feed(t).into_iter().flatten() {
                        acc += px.row + px.col;
                    }
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_select(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule/select");
    let s = DualChannelSchedule::new(3, 3, 64).unwrap();
    g.throughput(Throughput::Elements(576 * 200));
    g.bench_function("576pe_200cycles", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for t in 1..=200i64 {
                for p in 0..576usize {
                    acc += s.select(p, t - 1 - p as i64).index();
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule/emit");
    let dual = DualChannelSchedule::new(3, 3, 64).unwrap();
    let single = SingleChannelSchedule::new(3, 3, 64).unwrap();
    g.bench_function("dual", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for u in 0..400i64 {
                if dual.emit(u, 62).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.bench_function("single", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for u in 0..400i64 {
                if single.emit(u, 62).is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_feed, bench_select, bench_emit);
criterion_main!(benches);
