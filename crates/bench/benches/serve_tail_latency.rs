//! Tail-latency probe for the explorer daemon under mixed traffic:
//! a client hammers warm one-point evals while a background client
//! runs large cold sweeps, then the daemon's own `metrics` snapshot
//! reports how the small requests fared (p50/p99 request latency, and
//! the queue-wait vs execute split that explains it). This is the
//! observable form of the scheduler's fairness claim: small requests
//! interleave with big ones instead of waiting behind them.
//!
//! Not a criterion bench on purpose — tail latency is a distribution,
//! not a mean — so `main` drives the traffic once and prints the
//! histogram summaries (daemon-side and client-side, which should
//! roughly agree).

use std::time::{Duration, Instant};

use chain_nn_dse::{DesignPoint, SweepSpec};
use chain_nn_obs::HistogramSummary;
use chain_nn_serve::protocol::Response;
use chain_nn_serve::{Client, Server, ServerConfig};

struct Daemon {
    addr: std::net::SocketAddr,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn start() -> Daemon {
        let server = Server::bind(ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            server.run().expect("daemon runs");
        });
        Daemon {
            addr,
            handle: Some(handle),
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Ok(mut c) = Client::connect(self.addr) {
            let _ = c.shutdown();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// One big sweep per call, each with a distinct frequency so every
/// sweep stays a cold (evaluating) load instead of a cache replay.
fn cold_sweep(i: usize) -> SweepSpec {
    SweepSpec {
        pes: (64..=1024).step_by(16).collect(),
        freqs_mhz: vec![350.0 + i as f64],
        ..SweepSpec::paper_point()
    }
}

const SWEEPS: usize = 4;
const EVALS: usize = 400;

fn client_quantile(sorted: &[Duration], q: f64) -> Duration {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn print_summary(label: &str, h: &HistogramSummary) {
    println!(
        "{label:<28} count {:>5}  p50 {:>9.1}us  p95 {:>9.1}us  p99 {:>9.1}us  max {:>9.1}us",
        h.count,
        h.p50 / 1e3,
        h.p95 / 1e3,
        h.p99 / 1e3,
        h.max / 1e3,
    );
}

fn main() {
    let daemon = Daemon::start();

    // Prime the eval point so the foreground traffic is pure protocol +
    // scheduling (its latency tail is queueing, not model evaluation).
    let point = DesignPoint::paper_alexnet();
    let mut eval_client = Client::connect(daemon.addr).expect("connect");
    eval_client.eval(point.clone()).expect("prime");

    let sweeper = std::thread::spawn({
        let addr = daemon.addr;
        move || {
            let mut client = Client::connect(addr).expect("connect sweeper");
            for i in 0..SWEEPS {
                match client.sweep(cold_sweep(i)).expect("sweep") {
                    Response::Sweep(s) => assert!(s.points > 0),
                    other => panic!("expected a sweep reply, got {other:?}"),
                }
            }
        }
    });

    // Foreground: small warm evals racing the sweeps.
    let mut latencies = Vec::with_capacity(EVALS);
    for _ in 0..EVALS {
        let started = Instant::now();
        eval_client.eval(point.clone()).expect("eval");
        latencies.push(started.elapsed());
    }
    sweeper.join().expect("sweeper thread");

    let snapshot = match eval_client.metrics().expect("metrics") {
        Response::Metrics { snapshot } => snapshot,
        other => panic!("expected a metrics reply, got {other:?}"),
    };
    let eval_labels: &[(&str, &str)] = &[("type", "eval")];
    let request = snapshot
        .histogram("serve_request_ns", eval_labels)
        .expect("eval latency histogram");
    let queue_wait = snapshot
        .histogram("serve_queue_wait_ns", eval_labels)
        .expect("eval queue-wait histogram");
    let execute = snapshot
        .histogram("serve_execute_ns", eval_labels)
        .expect("eval execute histogram");
    let sweep = snapshot
        .histogram("serve_request_ns", &[("type", "sweep")])
        .expect("sweep latency histogram");

    // The daemon's tally must reconcile with the traffic we generated.
    assert_eq!(request.count, (EVALS + 1) as u64, "eval request count");
    assert_eq!(sweep.count, SWEEPS as u64, "sweep request count");
    assert_eq!(
        snapshot.counter("serve_requests_total", eval_labels),
        Some((EVALS + 1) as u64)
    );

    println!(
        "serve/tail_latency: {EVALS} warm evals vs {SWEEPS} concurrent cold sweeps ({} points each)",
        cold_sweep(0).len(),
    );
    print_summary("eval request (daemon)", &request);
    print_summary("eval queue_wait (daemon)", &queue_wait);
    print_summary("eval execute (daemon)", &execute);
    print_summary("sweep request (daemon)", &sweep);
    latencies.sort_unstable();
    println!(
        "{:<28} count {:>5}  p50 {:>9.1}us  p99 {:>9.1}us  max {:>9.1}us",
        "eval round trip (client)",
        latencies.len(),
        client_quantile(&latencies, 0.50).as_secs_f64() * 1e6,
        client_quantile(&latencies, 0.99).as_secs_f64() * 1e6,
        latencies.last().expect("nonempty").as_secs_f64() * 1e6,
    );
    drop(daemon);
}
