//! The float-to-fixed quantization study (paper §V.A methodology):
//! compare float inference against the 16-bit fixed-point datapath on
//! LeNet-5 and the CIFAR-10 network at several Q-formats, reporting
//! SQNR — the check the paper ran through MatConvNet + ModelSim.
//!
//! ```text
//! cargo run --release --example quantization
//! ```

use chain_nn_repro::fixed::error::compare;
use chain_nn_repro::fixed::{OverflowMode, QFormat};
use chain_nn_repro::nets::synth::SynthSource;
use chain_nn_repro::nets::zoo;
use chain_nn_repro::tensor::conv::{conv2d_f32, conv2d_fix};
use chain_nn_repro::tensor::{ops, Tensor};

fn main() {
    for net in [zoo::lenet(), zoo::cifar10()] {
        println!("== {} ==", net.name());
        println!(
            "{:>10} {:>12} {:>12} {:>12}",
            "frac bits", "SQNR (dB)", "max |err|", "MSE"
        );
        for frac in [6u32, 8, 10, 12, 14] {
            let stats = run_network(&net, frac);
            println!(
                "{:>10} {:>12.1} {:>12.5} {:>12.3e}",
                format!("{}+{}", frac, frac),
                stats.sqnr_db(),
                stats.max_abs,
                stats.mse
            );
        }
        println!();
    }
    println!(
        "rule of thumb: ~6 dB per fractional bit until the integer range\n\
         saturates; the paper's 16-bit datapath corresponds to the upper rows."
    );

    // The same pipeline as the DSE sees it: one measured SQNR per
    // (network, operand width) pair, attached to every evaluated point
    // (dse::accuracy, DESIGN.md §11). This is what `--bits 8,16` sweeps
    // and `tune --min-sqnr-db` budget against.
    println!("\n== DSE accuracy model: measured SQNR per (network, word width) ==");
    println!(
        "{:>10} {:>8} {:>12} {:>12}",
        "network", "bits", "SQNR (dB)", "max |err|"
    );
    for net in ["lenet", "cifar10", "alexnet", "vgg16"] {
        for bits in [8u32, 16] {
            let network = chain_nn_repro::dse::network_by_name(net).expect("zoo network");
            let stats = chain_nn_repro::dse::accuracy::measure(&network, bits).expect("measures");
            println!(
                "{net:>10} {bits:>8} {:>12.1} {:>12.5}",
                stats.sqnr_db, stats.max_abs
            );
        }
    }
    println!(
        "\nnarrow words stop dominating for free: the tuner's --min-sqnr-db\n\
         floor and the dse fps x mW x SQNR frontier both rank against these\n\
         measured values."
    );
}

/// Runs every conv layer of `net` in float and fixed point and compares
/// the final activations.
fn run_network(
    net: &chain_nn_repro::nets::Network,
    frac: u32,
) -> chain_nn_repro::fixed::error::ErrorStats {
    let mut src = SynthSource::new(42);
    let first = &net.layers()[0];
    let mut float_act = src.activations(first, 1, 2.0);

    let act_fmt = QFormat::new(frac).expect("valid format");
    let w_fmt = QFormat::new(frac).expect("valid format");

    let mut final_float = Tensor::<f32>::zeros([1, 1, 1, 1]);
    let mut final_fixed = final_float.clone();
    for layer in net.layers() {
        let weights = src.weights(layer);
        // Float reference.
        let fref =
            conv2d_f32(&float_act, &weights, None, layer.geometry()).expect("geometry consistent");
        let fref = ops::relu(&fref);
        // Fixed path quantizes the SAME inputs the float path consumed.
        let qa = float_act.map(|x| act_fmt.quantize(x));
        let qw = weights.map(|x| w_fmt.quantize(x));
        let raw = conv2d_fix(&qa, &qw, layer.geometry(), OverflowMode::Wrapping)
            .expect("geometry consistent");
        let scale = 2f32.powi(-(2 * frac as i32));
        let ffix = raw.map(|v| (v as f32 * scale).max(0.0));

        final_float = fref.clone();
        final_fixed = ffix;
        // Chain layers on the float activations (error accumulates only
        // through quantization at each boundary, like the hardware).
        float_act = fref;
    }
    compare(final_float.as_slice(), final_fixed.as_slice())
}
