//! Design-space exploration: sweep the chain length and clock frequency
//! and chart throughput, power, efficiency and area — the "fewer
//! overheads when scaled up" claim of paper §III.B, quantified.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use chain_nn_repro::core::perf::{CycleModel, PerfModel};
use chain_nn_repro::core::ChainConfig;
use chain_nn_repro::energy::area::AreaModel;
use chain_nn_repro::energy::power::PowerModel;
use chain_nn_repro::mem::MemoryConfig;
use chain_nn_repro::nets::zoo;

fn main() {
    let alex = zoo::alexnet();
    println!("== Chain-NN design space on AlexNet (batch 128) ==");
    println!(
        "{:>6} {:>6} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "PEs", "MHz", "peakGOPS", "fps", "mW", "GOPS/W", "gates(k)", "util%"
    );
    for pes in [144usize, 288, 576, 1152] {
        for freq in [350.0f64, 700.0] {
            let cfg = ChainConfig::builder()
                .num_pes(pes)
                .freq_mhz(freq)
                .build()
                .expect("valid configuration");
            let perf = PerfModel::new(cfg)
                .network(&alex, 128, CycleModel::PaperCalibrated)
                .expect("alexnet maps");
            let power = PowerModel::new(cfg, MemoryConfig::paper())
                .network_power(&alex, 128)
                .expect("alexnet maps");
            let area = AreaModel::new(cfg);
            println!(
                "{:>6} {:>6.0} {:>9.1} {:>8.1} {:>9.1} {:>9.1} {:>9.0} {:>8.1}%",
                pes,
                freq,
                cfg.peak_gops(),
                perf.fps,
                power.breakdown.total_mw(),
                power.gops_per_watt_total(),
                area.total_gates() / 1e3,
                100.0 * perf.gops / cfg.peak_gops(),
            );
        }
    }
    println!(
        "\nthe chain scales linearly in gates and near-linearly in fps; efficiency\n\
         (GOPS/W) stays roughly flat — the 1D organization adds no superlinear\n\
         interconnect cost, unlike 2D arrays (paper §III.B / Table V argument)."
    );

    println!("\n== PE utilization vs kernel size (Table II math, swept) ==");
    println!("{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}", "PEs", "K=3", "K=5", "K=7", "K=9", "K=11");
    for pes in [144usize, 288, 576, 1152] {
        let cfg = ChainConfig::builder().num_pes(pes).build().expect("valid");
        let mut row = format!("{pes:>6}");
        for k in [3usize, 5, 7, 9, 11] {
            let cell = match cfg.map_kernel(k) {
                Ok(m) => format!("{:>7.1}%", 100.0 * m.utilization()),
                Err(_) => format!("{:>8}", "n/a"),
            };
            row.push_str(&cell);
        }
        println!("{row}");
    }
}
