//! Design-space exploration: sweep chain length, clock and batch with
//! the parallel DSE engine and chart throughput, power, efficiency,
//! area and the Pareto frontier — the "fewer overheads when scaled up"
//! claim of paper §III.B, quantified over hundreds of points instead of
//! eight.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use chain_nn_repro::core::ChainConfig;
use chain_nn_repro::dse::{executor, DesignPoint, Explorer, SweepSpec};

fn main() {
    let threads = executor::default_threads();
    let mut explorer = Explorer::new();

    // -- the classic 8-point table, now through the engine --
    let coarse = SweepSpec {
        pes: vec![144, 288, 576, 1152],
        freqs_mhz: vec![350.0, 700.0],
        ..SweepSpec::paper_point()
    };
    let result = explorer.run(&coarse, threads).expect("coarse sweep runs");
    println!("== Chain-NN design space on AlexNet (batch 4) ==");
    println!(
        "{:>6} {:>6} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "PEs", "MHz", "peakGOPS", "fps", "sys mW", "GOPS/W", "gates(k)", "util%"
    );
    for (p, r) in result.points.iter().zip(&result.outcomes) {
        let Some(r) = r.result() else { continue };
        println!(
            "{:>6} {:>6.0} {:>9.1} {:>8.1} {:>9.1} {:>9.1} {:>9.0} {:>8.1}%",
            p.pes,
            p.freq_mhz,
            r.peak_gops,
            r.fps,
            r.system_mw(),
            r.gops_per_watt(),
            r.gates_k,
            100.0 * r.utilization(),
        );
    }
    println!(
        "\nthe chain scales linearly in gates and near-linearly in fps; efficiency\n\
         (GOPS/W) stays roughly flat — the 1D organization adds no superlinear\n\
         interconnect cost, unlike 2D arrays (paper §III.B / Table V argument)."
    );

    // -- the full default grid, in parallel, with its frontier --
    let grid = SweepSpec::default_grid();
    let full = explorer.run(&grid, threads).expect("default grid runs");
    println!(
        "\n== {}-point grid on {} threads: {:.0} points/s, {} cache hits ==",
        full.stats.points,
        full.stats.threads,
        full.stats.points_per_sec(),
        full.stats.cache_hits, // the coarse sweep above overlaps the grid
    );
    println!(
        "Pareto frontier (fps x system mW x kilo-gates): {} of {} feasible",
        full.frontier_3d.len(),
        full.stats.feasible
    );
    println!(
        "{:>6} {:>6} {:>6} {:>9} {:>10} {:>10}",
        "PEs", "MHz", "batch", "fps", "sys mW", "gates(k)"
    );
    let paper = DesignPoint::paper_alexnet();
    for (p, r) in full.frontier_points() {
        println!(
            "{:>6} {:>6.0} {:>6} {:>9.1} {:>10.1} {:>10.0}{}",
            p.pes,
            p.freq_mhz,
            p.batch,
            r.fps,
            r.system_mw(),
            r.gates_k,
            if *p == paper { "   <- paper" } else { "" },
        );
    }
    assert!(
        full.contains_paper_point_on_frontier(),
        "the paper's point should be Pareto-optimal in its own neighborhood"
    );

    // -- PE utilization vs kernel size (Table II math, swept) --
    println!("\n== PE utilization vs kernel size (Table II math, swept) ==");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "PEs", "K=3", "K=5", "K=7", "K=9", "K=11"
    );
    for pes in [144usize, 288, 576, 1152] {
        let cfg = ChainConfig::builder().num_pes(pes).build().expect("valid");
        let mut row = format!("{pes:>6}");
        for k in [3usize, 5, 7, 9, 11] {
            let cell = match cfg.map_kernel(k) {
                Ok(m) => format!("{:>7.1}%", 100.0 * m.utilization()),
                Err(_) => format!("{:>8}", "n/a"),
            };
            row.push_str(&cell);
        }
        println!("{row}");
    }
}
