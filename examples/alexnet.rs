//! AlexNet end-to-end: quantized inference through all five conv layers
//! (with ReLU/pooling between them) plus the paper-style performance,
//! traffic and power report for the 576-PE instance.
//!
//! The functional pipeline runs the golden fixed-point operators (the
//! chain simulator is bit-exact against them — asserted layer by layer in
//! `tests/chain_vs_reference.rs`); the architecture numbers come from the
//! calibrated models. Run with `--small` (default) for a 4x-downscaled
//! input or `--full` for the real 227×227 geometry.
//!
//! ```text
//! cargo run --release --example alexnet            # downscaled, fast
//! cargo run --release --example alexnet -- --full  # full geometry
//! ```

use chain_nn_repro::core::perf::{CycleModel, PerfModel};
use chain_nn_repro::core::ChainConfig;
use chain_nn_repro::energy::power::PowerModel;
use chain_nn_repro::fixed::{OverflowMode, QFormat};
use chain_nn_repro::mem::traffic::{totals, TrafficModel};
use chain_nn_repro::mem::MemoryConfig;
use chain_nn_repro::nets::synth::SynthSource;
use chain_nn_repro::nets::{zoo, ConvLayerSpec, Network};
use chain_nn_repro::tensor::conv::conv2d_fix;
use chain_nn_repro::tensor::ops;

fn small_alexnet() -> Network {
    // Spatially downscaled AlexNet: same channel structure, ~1/16 work.
    Network::new(
        "AlexNet/4",
        vec![
            ConvLayerSpec::named("conv1", 3, 59, 59, 11, 4, 0, 96, 1).expect("valid"),
            ConvLayerSpec::named("conv2", 96, 6, 6, 5, 1, 2, 256, 2).expect("valid"),
            ConvLayerSpec::named("conv3", 256, 2, 2, 3, 1, 1, 384, 1).expect("valid"),
            ConvLayerSpec::named("conv4", 384, 2, 2, 3, 1, 1, 384, 2).expect("valid"),
            ConvLayerSpec::named("conv5", 384, 2, 2, 3, 1, 1, 256, 2).expect("valid"),
        ],
    )
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let net = if full {
        zoo::alexnet()
    } else {
        small_alexnet()
    };
    println!("{net}");

    // ---- functional quantized inference on synthetic data ----
    let mut src = SynthSource::new(2017);
    let first = &net.layers()[0];
    let mut activation = src.activations(first, 1, 8.0);
    let act_fmt = QFormat::new(8).expect("valid");
    let w_fmt = QFormat::new(12).expect("valid");
    for (i, layer) in net.layers().iter().enumerate() {
        let weights = src.weights(layer);
        let qa = activation.map(|x| act_fmt.quantize(x));
        let qw = weights.map(|x| w_fmt.quantize(x));
        let raw = conv2d_fix(&qa, &qw, layer.geometry(), OverflowMode::Wrapping)
            .expect("layer geometry is consistent");
        // Dequantize psums (act 8 + weight 12 fractional bits), ReLU.
        let scale = 2f32.powi(-(8 + 12));
        let mut f = raw.map(|v| (v as f32 * scale).max(0.0));
        // AlexNet pools after conv1, conv2, conv5 (3x3, stride 2).
        if matches!(i, 0 | 1 | 4) && f.shape().h() >= 3 {
            f = ops::max_pool(&f, 3, 2);
        }
        let nonzero = f.as_slice().iter().filter(|&&x| x > 0.0).count();
        println!(
            "  {}: out {} ({} of {} activations firing)",
            layer.name(),
            f.shape(),
            nonzero,
            f.as_slice().len()
        );
        activation = f;
    }

    // ---- architecture report (always full AlexNet, like the paper) ----
    let alex = zoo::alexnet();
    let cfg = ChainConfig::paper_576();
    let perf = PerfModel::new(cfg);
    println!("\n-- performance (576 PEs @ 700 MHz) --");
    for batch in [4usize, 128] {
        let p = perf
            .network(&alex, batch, CycleModel::PaperCalibrated)
            .expect("alexnet maps");
        println!(
            "  batch {batch:>3}: {:>7.1} ms/batch  {:>6.1} fps  {:>6.1} GOPS achieved",
            p.total_ms, p.fps, p.gops
        );
    }

    let traffic = TrafficModel::new(cfg, MemoryConfig::paper());
    let rows = traffic.network_traffic(&alex, 4).expect("alexnet maps");
    let t = totals(&rows);
    println!("\n-- memory traffic, batch 4 --");
    println!(
        "  DRAM {:.1} MB | iMemory {:.1} MB | kMemory {:.1} MB | oMemory {:.1} MB",
        t.dram_bytes as f64 / 1e6,
        t.imem_bytes as f64 / 1e6,
        t.kmem_bytes as f64 / 1e6,
        t.omem_bytes as f64 / 1e6
    );

    let power = PowerModel::new(cfg, MemoryConfig::paper())
        .network_power(&alex, 4)
        .expect("alexnet maps");
    println!("\n-- power --");
    println!(
        "  {:.1} mW total ({:.1} chain / {:.1} kMem / {:.1} iMem / {:.1} oMem)",
        power.breakdown.total_mw(),
        power.breakdown.chain_mw,
        power.breakdown.kmem_mw,
        power.breakdown.imem_mw,
        power.breakdown.omem_mw
    );
    println!(
        "  {:.1} GOPS/W whole-chip (paper: 1421.0), {:.1} GOPS/W core-only",
        power.gops_per_watt_total(),
        power.gops_per_watt_core()
    );
}
