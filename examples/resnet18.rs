//! ResNet-18 on the chain — beyond the paper's evaluation set.
//!
//! The paper's intro motivates ever-deeper residual networks; this
//! example maps ResNet-18's convolutions (including its stride-2 3×3,
//! 1×1-projection and 7×7/2 stem layers) onto the 576-PE chain. Strided
//! layers run through the polyphase decomposition, so the strict model
//! reflects what the simulator actually executes — including a
//! cycle-accurate bit-exactness check of a downscaled stride-2 block.
//!
//! ```text
//! cargo run --release --example resnet18
//! ```

use chain_nn_repro::core::perf::{CycleModel, PerfModel};
use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{polyphase, ChainConfig, LayerShape};
use chain_nn_repro::fixed::{Fix16, OverflowMode};
use chain_nn_repro::nets::zoo;
use chain_nn_repro::tensor::conv::{conv2d_fix, ConvGeometry};
use chain_nn_repro::tensor::Tensor;

fn main() {
    let net = zoo::resnet18();
    let cfg = ChainConfig::paper_576();
    let model = PerfModel::new(cfg);
    println!(
        "== {} on Chain-NN ({} PEs @ {} MHz) ==",
        net.name(),
        cfg.num_pes(),
        cfg.freq_mhz()
    );
    println!(
        "{:<14} {:>4} {:>3} {:>9} {:>11} {:>11} {:>8}",
        "layer", "K/s", "E", "MACs(M)", "paper-cal", "strict(ms)", "phases"
    );
    let mut total_strict = 0f64;
    for spec in net.layers() {
        let cal = model
            .layer(spec, CycleModel::PaperCalibrated)
            .expect("resnet maps");
        let strict = model.layer(spec, CycleModel::Strict).expect("resnet maps");
        let to_ms = |cycles: f64| cycles / (cfg.freq_mhz() * 1e3);
        total_strict += to_ms(strict.compute_cycles());
        let shape = LayerShape::from_spec_group(spec, 0);
        let phases = polyphase::phases(&shape).len();
        println!(
            "{:<14} {:>2}/{} {:>3} {:>9.1} {:>9.2}ms {:>9.2}ms {:>8}",
            spec.name(),
            spec.k(),
            spec.stride(),
            spec.out_h(),
            spec.macs() as f64 / 1e6,
            to_ms(cal.compute_cycles()),
            to_ms(strict.compute_cycles()),
            if spec.stride() > 1 {
                phases.to_string()
            } else {
                "-".to_owned()
            },
        );
    }
    let loads_ms = net.total_weights() as f64 / (cfg.freq_mhz() * 1e3);
    println!(
        "\nstrict total {:.1} ms/image + {:.1} ms kernel load -> {:.1} fps at batch 16",
        total_strict,
        loads_ms,
        16.0 * 1e3 / (16.0 * total_strict + loads_ms)
    );

    // Cycle-accurate sanity on a downscaled stride-2 residual block
    // entry: 3x3 stride-2 conv, bit-exact through polyphase.
    let shape = LayerShape::square(4, 15, 8, 3, 2, 1);
    let vi = 4 * 15 * 15;
    let ifmap = Tensor::from_vec(
        [1, 4, 15, 15],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 37) as i16 - 18))
            .collect(),
    )
    .expect("dims");
    let weights = Tensor::from_vec(
        [8, 4, 3, 3],
        (0..8 * 4 * 9)
            .map(|i| Fix16::from_raw((i % 11) as i16 - 5))
            .collect(),
    )
    .expect("dims");
    let sim = ChainSim::new(ChainConfig::builder().num_pes(72).build().expect("cfg"));
    let rep = polyphase::run(&sim, &shape, &ifmap, &weights).expect("runs");
    let golden = conv2d_fix(
        &ifmap,
        &weights,
        ConvGeometry::new(3, 2, 1).expect("geometry"),
        OverflowMode::Wrapping,
    )
    .expect("golden");
    assert_eq!(rep.ofmaps, golden);
    println!(
        "\nstride-2 3x3 block entry simulated cycle-accurately via {} phases: bit-exact ✓",
        rep.phases.len()
    );
}
