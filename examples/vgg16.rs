//! VGG-16 on the 576-PE chain: per-layer performance and the effects the
//! paper's AlexNet evaluation never exercises — kernel tiling (C = 512
//! exceeds the 256-deep kMemory) and oMemory-limited ParaTile on the
//! large early maps.
//!
//! ```text
//! cargo run --release --example vgg16
//! ```

use chain_nn_repro::core::perf::{CycleModel, PerfModel};
use chain_nn_repro::core::{ChainConfig, LayerShape};
use chain_nn_repro::mem::dataflow::plan_layer;
use chain_nn_repro::mem::traffic::{totals, TrafficModel};
use chain_nn_repro::mem::MemoryConfig;
use chain_nn_repro::nets::zoo;

fn main() {
    let vgg = zoo::vgg16();
    let cfg = ChainConfig::paper_576();
    let mem = MemoryConfig::paper();
    let perf = PerfModel::new(cfg);
    let traffic = TrafficModel::new(cfg, mem);

    println!(
        "== VGG-16 on Chain-NN ({} PEs @ {} MHz) ==",
        cfg.num_pes(),
        cfg.freq_mhz()
    );
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>7} {:>9} {:>10} {:>10}",
        "layer", "MACs(M)", "conv(ms)", "ctiles", "para", "ifmapx", "DRAM(MB)", "util%"
    );
    let mut total_ms = 0f64;
    for spec in vgg.layers() {
        let p = perf
            .layer(spec, CycleModel::PaperCalibrated)
            .expect("vgg maps");
        let ms = p.compute_cycles() / (cfg.freq_mhz() * 1e3);
        total_ms += ms;
        let plan = &plan_layer(spec, &cfg, &mem).expect("vgg plans")[0];
        let t = traffic.layer_traffic(spec, 1).expect("vgg traffic");
        let shape = LayerShape::from_spec_group(spec, 0);
        let ideal = shape.macs() as f64 * spec.groups() as f64 / cfg.num_pes() as f64;
        println!(
            "{:<10} {:>9.1} {:>9.2} {:>7} {:>7} {:>7}x {:>10.2} {:>9.1}%",
            spec.name(),
            spec.macs() as f64 / 1e6,
            ms,
            plan.c_tiles,
            plan.para_tile,
            plan.ifmap_dram_passes,
            t.dram_bytes as f64 / 1e6,
            100.0 * ideal / p.compute_cycles(),
        );
    }
    let loads_ms = vgg.total_weights() as f64 / (cfg.freq_mhz() * 1e3);
    println!(
        "\nper image: {:.1} ms conv + {:.1} ms kernel load (batch-amortized) -> {:.1} fps at batch 16",
        total_ms,
        loads_ms,
        16.0 / (16.0 * total_ms + loads_ms) * 1e3
    );

    let rows = traffic.network_traffic(&vgg, 1).expect("vgg traffic");
    let t = totals(&rows);
    println!(
        "traffic per image: DRAM {:.0} MB | iMem {:.0} MB | kMem {:.0} MB | oMem {:.0} MB",
        t.dram_bytes as f64 / 1e6,
        t.imem_bytes as f64 / 1e6,
        t.kmem_bytes as f64 / 1e6,
        t.omem_bytes as f64 / 1e6
    );
    println!(
        "\nnote: conv1_1/conv1_2 pay ParaTile reduction (oMemory holds only 19 row\n\
         bands of 224-wide psums) and conv4/conv5 pay kMemory tiling (C=512 > 256\n\
         slots) — both effects absent from the paper's AlexNet-only evaluation."
    );
}
