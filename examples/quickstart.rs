//! Quickstart: run one 3×3 convolution through the cycle-accurate chain
//! simulator and check it against the golden model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{ChainConfig, LayerShape};
use chain_nn_repro::fixed::{OverflowMode, QFormat};
use chain_nn_repro::tensor::conv::{conv2d_fix, ConvGeometry};
use chain_nn_repro::tensor::Tensor;

fn main() {
    // A small Chain-NN instance: 4 primitives of 3x3 = 36 PEs.
    let cfg = ChainConfig::builder()
        .num_pes(36)
        .freq_mhz(700.0)
        .build()
        .expect("valid configuration");
    println!(
        "chain: {} PEs, peak {} GOPS",
        cfg.num_pes(),
        cfg.peak_gops()
    );

    // A 2-channel 8x8 image and 4 ofmap channels of 3x3 kernels,
    // quantized to Q3.12.
    let shape = LayerShape::square(2, 8, 4, 3, 1, 1);
    let fmt = QFormat::new(12).expect("valid format");
    let image_f: Vec<f32> = (0..2 * 64).map(|i| ((i as f32) * 0.37).sin()).collect();
    let weights_f: Vec<f32> = (0..4 * 2 * 9)
        .map(|i| ((i as f32) * 0.73).cos() * 0.5)
        .collect();
    let ifmap = Tensor::from_vec(
        [1, 2, 8, 8],
        image_f.iter().map(|&x| fmt.quantize(x)).collect(),
    )
    .expect("shape matches");
    let weights = Tensor::from_vec(
        [4, 2, 3, 3],
        weights_f.iter().map(|&x| fmt.quantize(x)).collect(),
    )
    .expect("shape matches");

    // Cycle-accurate run.
    let run = ChainSim::new(cfg)
        .run_layer(&shape, &ifmap, &weights)
        .expect("layer maps onto the chain");

    // Golden-model check (the paper checks ModelSim output against its
    // float-to-fix simulator the same way).
    let golden = conv2d_fix(
        &ifmap,
        &weights,
        ConvGeometry::new(3, 1, 1).expect("valid geometry"),
        OverflowMode::Wrapping,
    )
    .expect("golden conv");
    assert_eq!(run.ofmaps, golden, "chain output must be bit-exact");
    println!(
        "bit-exact vs golden model over {} outputs",
        golden.as_slice().len()
    );

    let s = &run.stats;
    println!("mapping:      {}", run.mapping);
    println!(
        "cycles:       {} stream + {} drain + {} load",
        s.stream_cycles, s.drain_cycles, s.load_cycles
    );
    println!("utilization:  {:.1}%", 100.0 * s.utilization(cfg.num_pes()));
    println!("iMemory:      {} reads", s.imem_reads);
    println!(
        "kMemory:      {} reads (1 latch / PE / pattern)",
        s.kmem_reads
    );
    println!(
        "oMemory:      {} accesses (RMW per channel pass)",
        s.omem_accesses
    );
    println!("time @700MHz: {:.2} us", run.seconds_at(700.0) * 1e6);
}
